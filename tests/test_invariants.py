"""Property-test layer hardening the incremental conflict engine.

Across 200+ seeded random workloads (deterministic, not hypothesis-driven,
so every seed is re-runnable in isolation) the suite asserts the three
end-to-end invariants of the balancing pipeline:

(a) **non-overlap** — a balanced schedule never overlaps two instances on
    any processor anywhere over the (infinite) steady state: the circular
    busy patterns modulo the hyper-period are pairwise disjoint;
(b) **Theorem 1's lower bound** — balancing never increases the total
    execution time (``makespan_after <= makespan_before``);
(c) **differential oracle** — the incremental conflict engine and the
    existing from-scratch reserved-pattern computation agree *move for
    move*: every run executes with ``cross_check=True``, which evaluates
    both paths on every steady-state query and raises on any divergence.

A direct unit-level differential test additionally compares
:class:`~repro.core.occupancy.OccupancyTimeline` queries against the
brute-force :func:`~repro.core.conditions.steady_state_compatible` oracle on
randomly generated circular interval sets (including wrapping intervals).

The module is marked ``slow``: CI always runs it, locally it can be skipped
with ``pytest -m "not slow"``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LoadBalancer, LoadBalancerOptions
from repro.core.conditions import steady_state_compatible
from repro.core.cost import CostPolicy
from repro.core.occupancy import OccupancyTimeline
from repro.errors import InfeasibleError
from repro.workloads.generator import scheduled_workload
from repro.workloads.spec import GraphShape, WorkloadSpec

pytestmark = pytest.mark.slow

#: 220 seeded workloads (a few draws are unschedulable and skip, keeping the
#: balanced-run count above the 200 the invariant layer promises).
SEEDS = tuple(range(220))
_SHAPES = (GraphShape.PIPELINE, GraphShape.SENSOR_FUSION)


def _spec(seed: int) -> WorkloadSpec:
    """Deterministic workload family: small graphs over 2-4 processors."""
    return WorkloadSpec(
        task_count=8 + (seed % 5) * 2,
        processor_count=2 + seed % 3,
        utilization=0.2 + (seed % 4) * 0.05,
        shape=_SHAPES[seed % len(_SHAPES)],
        seed=seed,
        label=f"invariants-{seed}",
    )


def _policy(seed: int) -> CostPolicy:
    policies = list(CostPolicy)
    return policies[seed % len(policies)]


@pytest.mark.parametrize("seed", SEEDS)
def test_balancing_invariants(seed: int) -> None:
    """(a) no steady-state overlap, (b) Theorem 1 lower bound, (c) oracle agreement."""
    try:
        _workload, schedule = scheduled_workload(_spec(seed))
    except InfeasibleError:
        pytest.skip("unschedulable draw (not a library failure)")

    # (c) cross_check compares the incremental engine against the
    # from-scratch computation on every steady-state query; a divergence
    # raises SchedulingError and fails the test.
    result = LoadBalancer(
        schedule, LoadBalancerOptions(policy=_policy(seed), cross_check=True)
    ).run()

    # (b) Theorem 1: the heuristic never increases the total execution time.
    assert result.makespan_after <= result.makespan_before + 1e-9, (
        f"seed {seed}: makespan increased "
        f"{result.makespan_before} -> {result.makespan_after}"
    )

    # (a) pairwise-disjoint circular busy patterns on every processor.
    balanced = result.balanced_schedule
    hyper_period = balanced.graph.hyper_period
    for processor, pattern in balanced.steady_patterns().items():
        timeline = OccupancyTimeline(hyper_period)
        for offset, length in pattern:
            assert not timeline.overlaps(offset, length), (
                f"seed {seed}: steady-state overlap on {processor} at "
                f"offset {offset:g} (length {length:g}); "
                f"safety level {result.safety_level!r}"
            )
            timeline.add(offset, length)

    # The balanced schedule holds exactly the instances of the initial one.
    assert len(balanced) == len(schedule)


@pytest.mark.parametrize("trial", range(50))
def test_occupancy_matches_bruteforce_oracle(trial: int) -> None:
    """OccupancyTimeline.overlaps agrees with steady_state_compatible exactly.

    Random circular interval sets (wrapping included) are loaded into a
    timeline; random candidate patterns are then answered by both the
    engine's indexed query and the brute-force pairwise oracle.
    """
    rng = np.random.default_rng(20080000 + trial)
    period = int(rng.integers(8, 48))
    timeline = OccupancyTimeline(period)
    reserved: list[tuple[float, float]] = []
    for _ in range(int(rng.integers(0, 14))):
        offset = round(float(rng.uniform(0.0, period)), 2)
        length = round(float(rng.uniform(0.0, period / 2)), 2)
        timeline.add(offset, length)
        reserved.append((offset, length))

    for _ in range(40):
        offset = round(float(rng.uniform(-period, 2 * period)), 2)
        length = round(float(rng.uniform(0.0, period)), 2)
        engine_free = not timeline.overlaps(offset, length)
        oracle_free = steady_state_compatible([(offset, length)], reserved, period)
        assert engine_free == oracle_free, (
            f"trial {trial}: engine={engine_free} oracle={oracle_free} for "
            f"candidate ({offset}, {length}) against {reserved} mod {period}"
        )


def test_occupancy_incremental_removal_matches_rebuild() -> None:
    """remove() leaves the timeline identical to one rebuilt from scratch."""
    rng = np.random.default_rng(42)
    period = 24
    entries = [
        (round(float(rng.uniform(0, period)), 2), round(float(rng.uniform(0.1, 6.0)), 2), f"t{i}")
        for i in range(20)
    ]
    timeline = OccupancyTimeline(period)
    for offset, length, owner in entries:
        timeline.add(offset, length, owner)
    keep = entries[::2]
    for offset, length, owner in entries[1::2]:
        timeline.remove(offset, length, owner)

    rebuilt = OccupancyTimeline(period)
    for offset, length, owner in keep:
        rebuilt.add(offset, length, owner)
    assert timeline.intervals() == rebuilt.intervals()
