"""Tests of repro.model.dependence (multi-rate edge semantics)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.model.dependence import Dependence
from repro.model.task import Task


def make_pair(producer_period: int, consumer_period: int) -> tuple[Task, Task, Dependence]:
    producer = Task("p", period=producer_period, wcet=1.0, data_size=2.0)
    consumer = Task("c", period=consumer_period, wcet=1.0)
    return producer, consumer, Dependence("p", "c")


class TestConstruction:
    def test_rejects_self_dependence(self):
        with pytest.raises(ModelError):
            Dependence("a", "a")

    def test_rejects_empty_names(self):
        with pytest.raises(ModelError):
            Dependence("", "b")

    def test_rejects_negative_data_size(self):
        with pytest.raises(ModelError):
            Dependence("a", "b", data_size=-1.0)

    def test_effective_data_size_falls_back_to_producer(self):
        producer, _consumer, dep = make_pair(3, 6)
        assert dep.effective_data_size(producer) == 2.0

    def test_effective_data_size_override(self):
        producer = Task("p", period=3, wcet=1.0, data_size=2.0)
        dep = Dependence("p", "c", data_size=5.0)
        assert dep.effective_data_size(producer) == 5.0

    def test_endpoint_check(self):
        producer, consumer, dep = make_pair(3, 6)
        wrong = Task("x", period=3, wcet=1.0)
        with pytest.raises(ModelError):
            dep.rate(wrong, consumer)
        with pytest.raises(ModelError):
            dep.rate(producer, wrong)


class TestMultiRateMapping:
    def test_consumer_slower_needs_n_samples(self):
        producer, consumer, dep = make_pair(3, 12)
        assert dep.rate(producer, consumer) == (4, 1)
        assert dep.producer_instances_for(producer, consumer, 0) == (0, 1, 2, 3)
        assert dep.producer_instances_for(producer, consumer, 1) == (4, 5, 6, 7)

    def test_consumer_faster_shares_one_sample(self):
        producer, consumer, dep = make_pair(12, 3)
        assert dep.rate(producer, consumer) == (1, 4)
        assert dep.producer_instances_for(producer, consumer, 0) == (0,)
        assert dep.producer_instances_for(producer, consumer, 5) == (1,)

    def test_equal_periods(self):
        producer, consumer, dep = make_pair(6, 6)
        assert dep.producer_instances_for(producer, consumer, 2) == (2,)

    def test_consumer_instances_inverse_slower(self):
        producer, consumer, dep = make_pair(3, 12)
        assert dep.consumer_instances_for(producer, consumer, 5) == (1,)

    def test_consumer_instances_inverse_faster(self):
        producer, consumer, dep = make_pair(12, 3)
        assert dep.consumer_instances_for(producer, consumer, 1) == (4, 5, 6, 7)

    def test_buffered_items_matches_figure_1(self):
        producer, consumer, dep = make_pair(3, 12)
        assert dep.buffered_items(producer, consumer) == 4

    def test_rejects_negative_indices(self):
        producer, consumer, dep = make_pair(3, 6)
        with pytest.raises(ModelError):
            dep.producer_instances_for(producer, consumer, -1)
        with pytest.raises(ModelError):
            dep.consumer_instances_for(producer, consumer, -1)

    @given(st.integers(1, 12), st.integers(1, 6), st.integers(0, 20))
    def test_mapping_is_consistent_both_ways(self, base, factor, consumer_index):
        """Every producer instance required by a consumer maps back to that consumer."""
        producer = Task("p", period=base, wcet=0.5)
        consumer = Task("c", period=base * factor, wcet=0.5)
        dep = Dependence("p", "c")
        for producer_index in dep.producer_instances_for(producer, consumer, consumer_index):
            back = dep.consumer_instances_for(producer, consumer, producer_index)
            assert consumer_index in back

    @given(st.integers(1, 12), st.integers(1, 6), st.integers(0, 10))
    def test_slower_consumer_gets_disjoint_windows(self, base, factor, consumer_index):
        producer = Task("p", period=base, wcet=0.5)
        consumer = Task("c", period=base * factor, wcet=0.5)
        dep = Dependence("p", "c")
        first = set(dep.producer_instances_for(producer, consumer, consumer_index))
        second = set(dep.producer_instances_for(producer, consumer, consumer_index + 1))
        assert first.isdisjoint(second)
