"""Tests of repro.scheduling.heuristic (the initial distributed scheduler)."""

import pytest

from repro.errors import InfeasibleError
from repro.model import Architecture, CommunicationModel, TaskGraph
from repro.scheduling.feasibility import check_schedule
from repro.scheduling.heuristic import (
    InitialScheduler,
    PlacementPolicy,
    SchedulerOptions,
    schedule_application,
)


class TestBasicScheduling:
    def test_small_chain_is_feasible(self, small_graph, small_arch):
        schedule = schedule_application(small_graph, small_arch)
        assert check_schedule(schedule).is_feasible
        assert len(schedule) == small_graph.total_instances()

    def test_paper_graph_is_schedulable(self, paper_graph, paper_arch):
        schedule = schedule_application(paper_graph, paper_arch)
        assert check_schedule(schedule).is_feasible

    def test_group_policy_colocates_dependents(self, small_graph, small_arch):
        schedule = schedule_application(
            small_graph, small_arch, SchedulerOptions(policy=PlacementPolicy.GROUP_WITH_PREDECESSORS)
        )
        assignment = schedule.task_assignment()
        assert assignment is not None
        assert assignment["src"] == assignment["mid"]

    def test_least_loaded_policy_spreads(self):
        graph = TaskGraph()
        for index in range(4):
            graph.create_task(f"ind{index}", period=10, wcet=2.0, memory=1.0)
        arch = Architecture.homogeneous(2)
        schedule = schedule_application(
            graph, arch, SchedulerOptions(policy=PlacementPolicy.LEAST_LOADED)
        )
        busy = schedule.busy_time_by_processor()
        assert busy["P1"] == pytest.approx(busy["P2"])

    def test_every_policy_produces_feasible_schedules(self, small_graph, small_arch):
        for policy in PlacementPolicy:
            schedule = schedule_application(
                small_graph, small_arch, SchedulerOptions(policy=policy)
            )
            assert check_schedule(schedule).is_feasible, policy

    def test_communications_attached_by_default(self):
        graph = TaskGraph()
        graph.create_task("p", period=6, wcet=2.0)
        graph.create_task("q", period=6, wcet=3.0)
        graph.create_task("r", period=6, wcet=3.0)
        graph.connect("p", "q")
        graph.connect("p", "r")
        arch = Architecture.homogeneous(2, comm=CommunicationModel(latency=0.5))
        schedule = schedule_application(graph, arch)
        # q and r cannot both fit with p on one processor (2+3+3 > 6), so at
        # least one inter-processor dependence (hence one transfer) exists.
        assert schedule.communications_count() >= 1

    def test_zero_wcet_task(self, small_arch):
        graph = TaskGraph()
        graph.create_task("nop", period=4, wcet=0.0)
        schedule = schedule_application(graph, small_arch)
        assert check_schedule(schedule).is_feasible


class TestInfeasibleDetection:
    def test_overloaded_single_processor(self):
        graph = TaskGraph()
        graph.create_task("t1", period=4, wcet=3.0)
        graph.create_task("t2", period=4, wcet=3.0)
        arch = Architecture.homogeneous(1)
        with pytest.raises(InfeasibleError):
            schedule_application(graph, arch)

    def test_overload_spread_over_two_processors_is_fine(self):
        graph = TaskGraph()
        graph.create_task("t1", period=4, wcet=3.0)
        graph.create_task("t2", period=4, wcet=3.0)
        arch = Architecture.homogeneous(2)
        schedule = schedule_application(graph, arch)
        assert check_schedule(schedule).is_feasible


class TestSteadyStateCorrectness:
    def test_multi_hyper_period_chain_remains_repeatable(self):
        """Deep multi-rate chains push starts past the hyper-period; the
        steady-state (modulo hyper-period) exclusivity must still hold."""
        graph = TaskGraph()
        previous = None
        for stage in range(6):
            period = 4 if stage < 3 else 8
            name = f"s{stage}"
            graph.create_task(name, period=period, wcet=1.0, memory=1.0)
            if previous:
                graph.connect(previous, name)
            previous = name
        arch = Architecture.homogeneous(2, comm=CommunicationModel(latency=1.0))
        schedule = schedule_application(
            graph, arch, SchedulerOptions(policy=PlacementPolicy.LEAST_LOADED)
        )
        report = check_schedule(schedule)
        assert report.is_feasible, report.summary()

    def test_scheduler_object_reusable(self, small_graph, small_arch):
        scheduler = InitialScheduler(small_graph, small_arch)
        first = scheduler.run()
        second = scheduler.run()
        assert first.instance_assignment() == second.instance_assignment()
