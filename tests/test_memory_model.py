"""Tests of repro.model.memory and repro.model.validation."""

import pytest

from repro.errors import ModelError
from repro.model import Architecture, TaskGraph
from repro.model.memory import (
    MemoryBreakdown,
    buffer_demand_by_processor,
    edge_buffer_demand,
    static_memory_by_processor,
    static_memory_of_tasks,
)
from repro.model.validation import validate_problem


class TestStaticMemory:
    def test_per_instance_accounting(self, paper_graph):
        # Task a has 4 instances of memory 4 -> 16 units (the paper's P1 figure).
        assert static_memory_of_tasks(paper_graph, ["a"]) == pytest.approx(16.0)
        assert static_memory_of_tasks(paper_graph, ["b", "c"]) == pytest.approx(4.0)

    def test_assignment_accounting(self, paper_graph):
        assignment = {("a", 0): "P1", ("a", 1): "P2", ("b", 0): "P2"}
        usage = static_memory_by_processor(paper_graph, assignment)
        assert usage == {"P1": 4.0, "P2": 5.0}


class TestBufferDemand:
    def test_edge_buffer_matches_rate(self, paper_graph):
        # b (period 6) consumes 2 samples of a (period 3).
        assert edge_buffer_demand(paper_graph, "a", "b") == pytest.approx(2.0)

    def test_local_edges_free(self, paper_graph):
        assert edge_buffer_demand(paper_graph, "a", "b", cross_processor=False) == 0.0

    def test_by_processor(self, paper_graph):
        assignment = {"a": "P1", "b": "P2", "c": "P2", "d": "P3", "e": "P3"}
        demand = buffer_demand_by_processor(paper_graph, assignment)
        # b buffers 2 samples of a on P2; d buffers 2 samples of b on P3;
        # e buffers 2 samples of c on P3 (d->e is local).
        assert demand["P2"] == pytest.approx(2.0)
        assert demand["P3"] == pytest.approx(4.0)

    def test_missing_assignment_rejected(self, paper_graph):
        with pytest.raises(ModelError):
            buffer_demand_by_processor(paper_graph, {"a": "P1"})


class TestMemoryBreakdown:
    def test_total_and_fits(self):
        breakdown = MemoryBreakdown("P1", static=10.0, buffers=4.0)
        assert breakdown.total == 14.0
        assert breakdown.fits(14.0)
        assert not breakdown.fits(13.0)


class TestValidateProblem:
    def test_paper_problem_is_clean(self, paper_graph, paper_arch):
        report = validate_problem(paper_graph, paper_arch)
        assert report.is_feasible
        report.raise_if_infeasible()

    def test_overload_detected(self):
        graph = TaskGraph()
        graph.create_task("t1", period=2, wcet=2.0)
        graph.create_task("t2", period=2, wcet=2.0)
        graph.create_task("t3", period=2, wcet=2.0)
        report = validate_problem(graph, Architecture.homogeneous(2))
        assert not report.is_feasible
        with pytest.raises(ModelError):
            report.raise_if_infeasible()

    def test_memory_overflow_detected(self):
        graph = TaskGraph()
        graph.create_task("big", period=4, wcet=1.0, memory=100.0)
        report = validate_problem(graph, Architecture.homogeneous(2, memory_capacity=10.0))
        assert not report.is_feasible

    def test_aggregate_memory_overflow_detected(self):
        graph = TaskGraph()
        for index in range(4):
            graph.create_task(f"t{index}", period=4, wcet=0.5, memory=9.0)
        report = validate_problem(graph, Architecture.homogeneous(2, memory_capacity=10.0))
        assert not report.is_feasible

    def test_high_utilization_is_a_warning(self):
        graph = TaskGraph()
        graph.create_task("t1", period=2, wcet=1.8)
        report = validate_problem(graph, Architecture.homogeneous(1))
        assert report.is_feasible
        assert report.warnings

    def test_summary_mentions_errors(self):
        graph = TaskGraph()
        graph.create_task("big", period=4, wcet=1.0, memory=100.0)
        report = validate_problem(graph, Architecture.homogeneous(1, memory_capacity=1.0))
        assert "ERROR" in report.summary()
