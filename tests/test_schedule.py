"""Tests of repro.scheduling.schedule (Schedule and friends)."""

import pytest

from repro.errors import SchedulingError
from repro.scheduling.schedule import CommOperation, ProcessorTimeline, Schedule, ScheduledInstance


class TestScheduledInstance:
    def test_end_and_key(self):
        instance = ScheduledInstance("a", 1, "P1", 3.0, 1.5, 4.0)
        assert instance.end == 4.5
        assert instance.key == ("a", 1)
        assert instance.label == "a#1"
        assert not instance.is_first

    def test_moved(self):
        instance = ScheduledInstance("a", 0, "P1", 3.0, 1.0)
        moved = instance.moved(processor="P2", start=5.0)
        assert (moved.processor, moved.start) == ("P2", 5.0)
        assert (instance.processor, instance.start) == ("P1", 3.0)

    def test_overlaps(self):
        first = ScheduledInstance("a", 0, "P1", 0.0, 2.0)
        second = ScheduledInstance("b", 0, "P1", 1.0, 2.0)
        third = ScheduledInstance("c", 0, "P1", 2.0, 1.0)
        assert first.overlaps(second)
        assert not first.overlaps(third)

    def test_rejects_negative_start(self):
        with pytest.raises(SchedulingError):
            ScheduledInstance("a", 0, "P1", -1.0, 1.0)

    def test_rejects_negative_index(self):
        with pytest.raises(SchedulingError):
            ScheduledInstance("a", -1, "P1", 0.0, 1.0)


class TestCommOperation:
    def test_arrival(self):
        op = CommOperation("a", 0, "b", 0, "P1", "P2", "Med", 4.0, 1.0)
        assert op.arrival == 5.0
        assert op.producer_key == ("a", 0)
        assert "a#0" in op.label

    def test_rejects_same_processor(self):
        with pytest.raises(SchedulingError):
            CommOperation("a", 0, "b", 0, "P1", "P1", "Med", 4.0, 1.0)


class TestProcessorTimeline:
    def test_sorted_and_stats(self):
        timeline = ProcessorTimeline(
            "P1",
            [
                ScheduledInstance("b", 0, "P1", 5.0, 1.0, 2.0),
                ScheduledInstance("a", 0, "P1", 0.0, 1.0, 4.0),
            ],
        )
        assert [si.task for si in timeline] == ["a", "b"]
        assert timeline.busy_time == 2.0
        assert timeline.static_memory == 6.0
        assert timeline.start == 0.0 and timeline.end == 6.0
        assert timeline.idle_time() == pytest.approx(4.0)
        assert timeline.is_free(2.0, 4.0)
        assert not timeline.is_free(0.5, 1.5)

    def test_rejects_foreign_instance(self):
        with pytest.raises(SchedulingError):
            ProcessorTimeline("P1", [ScheduledInstance("a", 0, "P2", 0.0, 1.0)])

    def test_overlapping_pairs(self):
        timeline = ProcessorTimeline(
            "P1",
            [
                ScheduledInstance("a", 0, "P1", 0.0, 2.0),
                ScheduledInstance("b", 0, "P1", 1.0, 2.0),
            ],
        )
        assert len(timeline.overlapping_pairs()) == 1


class TestSchedule:
    def test_paper_schedule_metrics(self, paper_schedule):
        assert paper_schedule.makespan == pytest.approx(15.0)
        assert paper_schedule.memory_by_processor() == {"P1": 16.0, "P2": 4.0, "P3": 4.0}
        assert paper_schedule.busy_time_by_processor() == {"P1": 4.0, "P2": 4.0, "P3": 2.0}
        assert paper_schedule.first_start("b") == 5.0
        assert len(paper_schedule) == 10

    def test_instances_of(self, paper_schedule):
        instances = paper_schedule.instances_of("a")
        assert [si.index for si in instances] == [0, 1, 2, 3]

    def test_task_assignment_consistent(self, paper_schedule):
        assignment = paper_schedule.task_assignment()
        assert assignment is not None
        assert assignment["a"] == "P1"

    def test_task_assignment_none_when_split(self, paper_schedule):
        split = paper_schedule.moved({("a", 1): ("P2", 3.0)})
        assert split.task_assignment() is None
        assert split.instance_assignment()[("a", 1)] == "P2"

    def test_duplicate_instance_rejected(self, paper_graph, paper_arch):
        instance = ScheduledInstance("a", 0, "P1", 0.0, 1.0)
        with pytest.raises(SchedulingError):
            Schedule(paper_graph, paper_arch, [instance, instance])

    def test_unknown_processor_rejected(self, paper_graph, paper_arch):
        with pytest.raises(SchedulingError):
            Schedule(paper_graph, paper_arch, [ScheduledInstance("a", 0, "P9", 0.0, 1.0)])

    def test_unknown_task_rejected(self, paper_graph, paper_arch):
        with pytest.raises(SchedulingError):
            Schedule(paper_graph, paper_arch, [ScheduledInstance("zz", 0, "P1", 0.0, 1.0)])

    def test_missing_instance_lookup(self, paper_schedule):
        with pytest.raises(SchedulingError):
            paper_schedule.instance("a", 9)

    def test_communications_present(self, paper_schedule):
        assert paper_schedule.communications_count() > 0
        assert paper_schedule.communication_volume() > 0

    def test_idle_fraction_between_zero_and_one(self, paper_schedule):
        fraction = paper_schedule.idle_fraction()
        assert 0.0 <= fraction <= 1.0

    def test_describe_mentions_processors(self, paper_schedule):
        text = paper_schedule.describe()
        assert "P1" in text and "a#0" in text
