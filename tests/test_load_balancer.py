"""Tests of repro.core.load_balancer (Algorithm 3.2)."""

import pytest

from repro.core import CostPolicy, LoadBalancer, LoadBalancerOptions, balance_schedule
from repro.errors import ConfigurationError
from repro.scheduling import check_schedule
from repro.scheduling.heuristic import PlacementPolicy, SchedulerOptions
from repro.workloads import GraphShape, WorkloadSpec, scheduled_workload


class TestBasicBehaviour:
    def test_result_fields(self, paper_schedule):
        result = balance_schedule(paper_schedule)
        assert result.makespan_before == pytest.approx(15.0)
        assert result.makespan_after <= result.makespan_before
        assert len(result.decisions) == len(result.blocks) == 7
        assert result.evaluations == 7 * 3
        assert result.safety_level in {"paper", "conservative", "no-op"}

    def test_every_policy_produces_feasible_result(self, paper_schedule):
        for policy in CostPolicy:
            result = balance_schedule(paper_schedule, LoadBalancerOptions(policy=policy))
            report = check_schedule(result.balanced_schedule, check_memory=False)
            assert report.is_feasible, (policy, report.summary())

    def test_balanced_schedule_has_all_instances(self, paper_schedule):
        result = balance_schedule(paper_schedule)
        assert len(result.balanced_schedule) == len(paper_schedule)

    def test_empty_schedule_rejected(self, paper_schedule):
        empty = paper_schedule.with_instances([], ())
        with pytest.raises(ConfigurationError):
            LoadBalancer(empty)

    def test_total_gain_never_negative(self, paper_schedule):
        for policy in CostPolicy:
            result = balance_schedule(paper_schedule, LoadBalancerOptions(policy=policy))
            assert result.total_gain >= -1e-9

    def test_decisions_have_candidates_for_every_processor(self, paper_schedule):
        result = balance_schedule(paper_schedule)
        for decision in result.decisions:
            assert len(decision.candidates) == 3
            assert decision.candidate_for("P1") is not None
            assert decision.candidate_for("P9") is None

    def test_summary_and_describe(self, paper_schedule):
        result = balance_schedule(paper_schedule)
        assert "total execution time" in result.summary()
        assert "chosen" in result.decisions[0].describe()

    def test_decision_lookup_by_label(self, paper_schedule):
        result = balance_schedule(paper_schedule)
        assert result.decision_for("[a#0]") is not None
        assert result.decision_for("[nope]") is None


class TestOptions:
    def test_memory_only_policy_spreads_memory(self, paper_schedule):
        result = balance_schedule(
            paper_schedule, LoadBalancerOptions(policy=CostPolicy.MEMORY_ONLY)
        )
        assert result.max_memory_after <= result.max_memory_before

    def test_disable_lcm_condition(self, paper_schedule):
        result = balance_schedule(
            paper_schedule,
            LoadBalancerOptions(policy=CostPolicy.LEXICOGRAPHIC, enforce_lcm_condition=False),
        )
        # Without the LCM condition [d#0-e#0] may go to P1 instead of P3, but
        # the steady-state check still keeps the schedule repeatable.
        assert check_schedule(result.balanced_schedule, check_memory=False).is_feasible

    def test_conservative_mode_feasible(self, paper_schedule):
        result = balance_schedule(
            paper_schedule,
            LoadBalancerOptions(protect_unmoved=True, protect_downstream=True),
        )
        assert check_schedule(result.balanced_schedule, check_memory=False).is_feasible

    def test_verify_result_records_warnings(self, paper_schedule):
        result = balance_schedule(paper_schedule, LoadBalancerOptions(verify_result=True))
        assert isinstance(result.warnings, list)

    def test_no_attach_communications(self, paper_schedule):
        result = balance_schedule(
            paper_schedule, LoadBalancerOptions(attach_communications=False)
        )
        assert result.balanced_schedule.communications == ()


class TestOptionValidation:
    """Contradictory flag combinations are rejected at construction time."""

    def test_protect_unmoved_without_steady_state_rejected(self):
        # Original-slot protection is implemented through the steady-state
        # acceptance test; disabling the test would silently disable it.
        with pytest.raises(ConfigurationError, match="protect_unmoved"):
            LoadBalancerOptions(protect_unmoved=True, enforce_steady_state=False)

    def test_retry_without_verification_rejected(self):
        # The retry ladder triggers off the final feasibility check; without
        # verify_result it could never fire.
        with pytest.raises(ConfigurationError, match="retry_until_feasible"):
            LoadBalancerOptions(verify_result=False)

    def test_explicitly_unverified_single_pass_allowed(self):
        options = LoadBalancerOptions(verify_result=False, retry_until_feasible=False)
        assert not options.verify_result

    def test_protect_unmoved_with_steady_state_allowed(self):
        options = LoadBalancerOptions(protect_unmoved=True)
        assert options.enforce_steady_state

    def test_cross_check_matches_default_run(self, paper_schedule):
        plain = balance_schedule(paper_schedule)
        checked = balance_schedule(paper_schedule, LoadBalancerOptions(cross_check=True))
        assert [d.chosen_processor for d in checked.decisions] == [
            d.chosen_processor for d in plain.decisions
        ]
        assert checked.makespan_after == plain.makespan_after


class TestOnGeneratedWorkloads:
    @pytest.mark.parametrize("shape", [GraphShape.PIPELINE, GraphShape.SENSOR_FUSION])
    def test_balancing_preserves_feasibility(self, shape):
        spec = WorkloadSpec(
            task_count=24, processor_count=3, utilization=0.3, shape=shape, seed=11
        )
        _workload, schedule = scheduled_workload(
            spec, SchedulerOptions(policy=PlacementPolicy.LEAST_LOADED)
        )
        assert check_schedule(schedule).is_feasible
        result = balance_schedule(schedule)
        report = check_schedule(result.balanced_schedule, check_memory=False)
        assert report.is_feasible, report.summary()
        assert result.total_gain >= -1e-9

    def test_retry_ladder_reports_safety_level(self):
        spec = WorkloadSpec(
            task_count=30, processor_count=4, utilization=0.3, shape=GraphShape.LAYERED, seed=7
        )
        _workload, schedule = scheduled_workload(spec)
        result = balance_schedule(schedule)
        assert result.safety_level in {"paper", "conservative", "no-op"}
        assert check_schedule(result.balanced_schedule, check_memory=False).is_feasible

    def test_retry_disabled_keeps_paper_behaviour(self):
        spec = WorkloadSpec(
            task_count=30, processor_count=4, utilization=0.3, shape=GraphShape.LAYERED, seed=7
        )
        _workload, schedule = scheduled_workload(spec)
        result = balance_schedule(schedule, LoadBalancerOptions(retry_until_feasible=False))
        assert result.safety_level == "paper"
