"""Golden replay of the frozen ``regression/*`` scenarios.

Every counterexample the hunt froze must keep reproducing: the objective
evidence is pinned field for field, the structural fingerprint must match,
and the spec must survive the full pipeline + conformance replay without
findings.  A diff here means generator/balancer behaviour drifted on a spec
the search once proved interesting.
"""

from __future__ import annotations

import pytest

from repro.scenarios import (
    SweepCell,
    available_scenarios,
    execute_cell,
    frozen_names,
    load_frozen,
    scenario_info,
    workload_digest,
)
from repro.search import evaluate_objective, objective_info
from repro.workloads.generator import generate_workload

FROZEN = load_frozen()

#: The exemplar hunted into the packaged registry: an 8-task/3-processor
#: layered workload whose greedy memory balance lands at 1.4518x the optimum
#: — well inside the Theorem 2 bound of 2 - 1/3, but the worst ratio the
#: full-budget hunt surfaced.
EXEMPLAR = "regression/approx_ratio-b8481bdf"


def test_packaged_registry_is_loaded_and_registered():
    names = [entry.name for entry in FROZEN]
    assert EXEMPLAR in names
    assert frozen_names() == tuple(sorted(names))
    registered = available_scenarios()
    for name in names:
        assert name in registered
        assert scenario_info(name).frozen


@pytest.mark.parametrize("entry", FROZEN, ids=lambda entry: entry.name)
class TestFrozenReplay:
    def test_objective_evidence_is_pinned_field_for_field(self, entry):
        replay = evaluate_objective(entry.objective, entry.spec)
        assert replay.status == "ok"
        assert replay.score == pytest.approx(entry.score, rel=1e-12)
        assert replay.score >= entry.threshold
        assert set(replay.evidence) == set(entry.evidence)
        for key, pinned in entry.evidence.items():
            observed = replay.evidence[key]
            if isinstance(pinned, float):
                assert observed == pytest.approx(pinned, rel=1e-12), key
            else:
                assert observed == pinned, key

    def test_structural_fingerprint_is_stable(self, entry):
        assert workload_digest(generate_workload(entry.spec)) == entry.fingerprint
        assert entry.name.endswith(entry.fingerprint[:8])

    def test_threshold_is_no_looser_than_the_objective_registry(self, entry):
        # A hunt may tighten its firing threshold (the exemplar used 1.4),
        # but a frozen entry below the registered default would be noise.
        assert entry.threshold >= objective_info(entry.objective).threshold

    @pytest.mark.parametrize("preset", ["tiny", "full"])
    def test_frozen_grid_is_one_pinned_cell(self, entry, preset):
        scenario = scenario_info(entry.name)
        assert scenario.cell_count(preset) == 1
        assert scenario.workload_spec(preset, 0) == entry.spec

    def test_pipeline_and_conformance_replay_stay_clean(self, entry):
        record = execute_cell(
            SweepCell(entry.name, 0, "paper", "tiny", oracle=True, conformance=True)
        )
        assert record["status"] == "ok", record.get("detail")
        assert record["findings"] == []
        assert record["feasible"] is True
        assert record["seed"] == entry.spec.seed


def test_exemplar_evidence_golden_values():
    # Field-for-field golden pin of the packaged exemplar, independent of the
    # registry file's own copy (so a silent registry rewrite also trips here).
    entry = next(e for e in FROZEN if e.name == EXEMPLAR)
    assert entry.objective == "approx_ratio"
    assert entry.fingerprint == "b8481bdff591c73d"
    assert entry.spec.task_count == 8
    assert entry.spec.processor_count == 3
    assert entry.score == pytest.approx(1.4518072289156627, rel=1e-12)
    assert entry.evidence["ratio"] == pytest.approx(1.4518072289156627, rel=1e-12)
    assert entry.evidence["bound"] == pytest.approx(5 / 3, rel=1e-12)
    assert entry.evidence["greedy_max_memory"] == pytest.approx(24.1, rel=1e-12)
    assert entry.evidence["optimal_max_memory"] == pytest.approx(16.6, rel=1e-12)
    assert entry.evidence["within_bound"] is True
    assert entry.evidence["exact"] is True
    assert entry.provenance["objective"] == "approx_ratio"
    assert entry.provenance["minimize"] is not None
