"""Churn subsystem: typed deltas, ``Pipeline.rebalance`` and the churn grid.

Four layers under test:

* the delta value objects and :class:`ChurnTimeline` (round-trips, canonical
  digests, apply semantics, strict-key rejection);
* :meth:`Pipeline.rebalance` and the ``repro-run/2`` envelope (delta
  provenance, empty-delta identity, v1 compatibility);
* property-based agreement between incremental repair and the from-scratch
  oracle on random workloads and delta sequences;
* the churn scenario registry and :class:`ChurnGridArtifact`.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import (
    RUN_SCHEMA,
    RUN_SCHEMA_V2,
    AddTask,
    ChurnTimeline,
    Pipeline,
    PipelineConfig,
    ProcessorLoss,
    RemoveTask,
    ReportStage,
    RunResult,
    VerifyStage,
    WcetDrift,
    WorkloadStage,
    delta_from_dict,
    rebalance_run,
    timeline_from_payload,
)
from repro.churn.deltas import DELTA_SCHEMA
from repro.errors import ConfigurationError, InfeasibleError, ReproError
from repro.model import Architecture, CommunicationModel, TaskGraph
from repro.scenarios import (
    CHURN_SCHEMA,
    ChurnGridArtifact,
    available_churn_scenarios,
    churn_grid_cells,
    churn_scenario_info,
    execute_churn_cell,
    run_churn_grid,
)
from repro.scenarios.registry import scenario_scale
from repro.scheduling import check_schedule
from repro.workloads.generator import generate_workload


def small_graph() -> TaskGraph:
    """Three harmonic tasks (periods 4/4/8) with one dependence edge."""
    graph = TaskGraph(name="churn-fixture")
    graph.create_task("a", period=4, wcet=1.0, memory=2.0)
    graph.create_task("b", period=4, wcet=0.5, memory=1.0)
    graph.create_task("c", period=8, wcet=1.0, memory=4.0)
    graph.connect("a", "c")
    return graph


def small_architecture(processors: int = 2) -> Architecture:
    return Architecture.homogeneous(processors, comm=CommunicationModel(latency=0.5))


def provided_config(label: str = "churn-test") -> PipelineConfig:
    """Provided-kind config with conformance-free verification (fast)."""
    return PipelineConfig(
        workload=WorkloadStage(kind="provided"),
        verify=VerifyStage(enabled=True, check_memory=False),
        report=ReportStage(enabled=False),
        label=label,
    )


# ----------------------------------------------------------------------
# Delta round-trips and strictness
# ----------------------------------------------------------------------
ALL_DELTAS = (
    AddTask(name="n", period=4, wcet=0.5, memory=1.0, predecessors=("a",)),
    RemoveTask(name="b"),
    WcetDrift(name="a", wcet=1.5),
    ProcessorLoss(processor="P2"),
)


class TestDeltaSerialisation:
    @pytest.mark.parametrize("delta", ALL_DELTAS, ids=lambda d: d.kind)
    def test_round_trip_preserves_equality(self, delta):
        rebuilt = delta_from_dict(delta.to_dict())
        assert rebuilt == delta
        assert rebuilt.to_dict() == delta.to_dict()

    @pytest.mark.parametrize("delta", ALL_DELTAS, ids=lambda d: d.kind)
    def test_unknown_key_is_rejected(self, delta):
        data = delta.to_dict()
        data["surprise"] = 1
        with pytest.raises(ConfigurationError, match="surprise"):
            delta_from_dict(data)

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            delta_from_dict({"kind": "teleport_task", "name": "a"})

    def test_non_mapping_is_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            delta_from_dict(["kind", "add_task"])


class TestDeltaApply:
    def test_add_task_extends_a_copy(self):
        graph, architecture = small_graph(), small_architecture()
        new_graph, new_arch = AddTask(
            name="d", period=8, wcet=0.25, predecessors=("a",)
        ).apply(graph, architecture)
        assert "d" in new_graph and "d" not in graph
        assert any(dep.key == ("a", "d") for dep in new_graph.dependences)
        assert new_arch is architecture

    def test_add_duplicate_name_is_rejected(self):
        with pytest.raises(ConfigurationError, match="already exists"):
            AddTask(name="a", period=4, wcet=0.5).apply(
                small_graph(), small_architecture()
            )

    def test_remove_task_drops_incident_dependences(self):
        new_graph, _ = RemoveTask(name="a").apply(small_graph(), small_architecture())
        assert "a" not in new_graph
        assert all("a" not in dep.key for dep in new_graph.dependences)
        assert len(new_graph) == 2

    def test_remove_unknown_task_is_rejected(self):
        with pytest.raises(ReproError):
            RemoveTask(name="ghost").apply(small_graph(), small_architecture())

    def test_remove_last_task_is_rejected(self):
        solo = TaskGraph(name="solo")
        solo.create_task("only", period=4, wcet=1.0)
        with pytest.raises(ConfigurationError, match="last task"):
            RemoveTask(name="only").apply(solo, small_architecture())

    def test_wcet_drift_changes_only_the_target(self):
        new_graph, _ = WcetDrift(name="a", wcet=2.0).apply(
            small_graph(), small_architecture()
        )
        assert new_graph.task("a").wcet == 2.0
        assert new_graph.task("b").wcet == 0.5

    def test_processor_loss_shrinks_the_architecture(self):
        architecture = small_architecture(3)
        lost = architecture.processor_names[0]
        _, new_arch = ProcessorLoss(processor=lost).apply(small_graph(), architecture)
        assert lost not in new_arch.processor_names
        assert len(new_arch.processor_names) == 2

    def test_losing_the_last_processor_is_rejected(self):
        architecture = small_architecture(1)
        with pytest.raises(ConfigurationError, match="last processor"):
            ProcessorLoss(processor=architecture.processor_names[0]).apply(
                small_graph(), architecture
            )


class TestChurnTimeline:
    def test_round_trip_and_schema(self):
        timeline = ChurnTimeline.of(*ALL_DELTAS)
        data = timeline.to_dict()
        assert data["schema"] == DELTA_SCHEMA
        assert ChurnTimeline.from_dict(data) == timeline

    def test_digest_is_sha256_of_canonical_bytes(self):
        timeline = ChurnTimeline.of(WcetDrift(name="a", wcet=1.5))
        assert timeline.digest() == hashlib.sha256(timeline.canonical_bytes()).hexdigest()
        assert timeline.digest() == ChurnTimeline.of(WcetDrift(name="a", wcet=1.5)).digest()
        assert timeline.digest() != ChurnTimeline.of(WcetDrift(name="a", wcet=1.6)).digest()

    def test_unknown_key_is_rejected(self):
        data = ChurnTimeline().to_dict()
        data["extra"] = []
        with pytest.raises(ConfigurationError, match="extra"):
            ChurnTimeline.from_dict(data)

    def test_newer_schema_is_rejected(self):
        with pytest.raises(ConfigurationError, match="schema"):
            ChurnTimeline.from_dict({"schema": "repro-delta/2", "deltas": []})

    def test_apply_folds_in_order(self):
        timeline = ChurnTimeline.of(
            AddTask(name="d", period=4, wcet=0.25),
            WcetDrift(name="d", wcet=0.75),  # drifts the task added one step before
        )
        new_graph, _ = timeline.apply(small_graph(), small_architecture())
        assert new_graph.task("d").wcet == 0.75

    def test_payload_accepts_single_delta_and_timeline_forms(self):
        single = timeline_from_payload({"kind": "remove_task", "name": "b"})
        assert single == ChurnTimeline.of(RemoveTask(name="b"))
        whole = timeline_from_payload(ChurnTimeline.of(RemoveTask(name="b")).to_dict())
        assert whole == single
        with pytest.raises(ConfigurationError, match="JSON object"):
            timeline_from_payload([1, 2, 3])


# ----------------------------------------------------------------------
# Pipeline.rebalance and the repro-run/2 envelope
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def paper_prior() -> RunResult:
    return Pipeline(PipelineConfig.paper_example()).run()


class TestRebalance:
    def test_empty_timeline_is_identity(self, paper_prior):
        result = Pipeline(PipelineConfig.paper_example()).rebalance(
            paper_prior, ChurnTimeline()
        )
        assert result.schema == RUN_SCHEMA_V2
        assert result.feasible
        assert result.balanced_schedule.makespan == pytest.approx(
            paper_prior.balanced_schedule.makespan
        )
        stats = result.rebalance["stats"]
        assert stats["displaced"] == 0

    def test_add_task_carries_delta_provenance(self, paper_prior):
        period = int(paper_prior.balanced_schedule.graph.distinct_periods()[0])
        timeline = ChurnTimeline.of(
            AddTask(name="newcomer", period=period, wcet=0.25)
        )
        result = Pipeline(PipelineConfig.paper_example()).rebalance(paper_prior, timeline)
        assert result.schema == RUN_SCHEMA_V2
        assert result.feasible
        assert "newcomer" in result.balanced_schedule.graph
        provenance = result.rebalance
        assert set(provenance) == {
            "prior_fingerprint",
            "prior_label",
            "delta_digest",
            "delta",
            "stats",
        }
        assert provenance["delta_digest"] == timeline.digest()
        assert provenance["delta"] == timeline.to_dict()
        assert provenance["prior_fingerprint"] == PipelineConfig.paper_example().fingerprint()
        report = check_schedule(result.balanced_schedule, check_memory=False)
        assert report.is_feasible, report.summary()

    def test_single_delta_is_coerced_to_a_timeline(self, paper_prior):
        task = paper_prior.balanced_schedule.graph.task_names[0]
        result = rebalance_run(paper_prior, RemoveTask(name=task))
        assert result.schema == RUN_SCHEMA_V2
        assert result.rebalance["delta"]["deltas"][0]["kind"] == "remove_task"

    def test_v2_round_trip_preserves_provenance(self, paper_prior):
        result = rebalance_run(
            paper_prior, WcetDrift(name=paper_prior.balanced_schedule.graph.task_names[0], wcet=0.5)
        )
        rebuilt = RunResult.from_dict(result.to_dict())
        assert rebuilt.schema == RUN_SCHEMA_V2
        assert rebuilt.rebalance == result.rebalance
        assert rebuilt.to_dict() == result.to_dict()

    def test_v1_envelope_still_parses(self, paper_prior):
        data = paper_prior.to_dict()
        assert data["schema"] == RUN_SCHEMA
        rebuilt = RunResult.from_dict(data)
        assert rebuilt.schema == RUN_SCHEMA
        assert rebuilt.rebalance is None

    def test_future_run_schema_is_rejected(self, paper_prior):
        data = paper_prior.to_dict()
        data["schema"] = "repro-run/3"
        with pytest.raises(ConfigurationError, match="schema"):
            RunResult.from_dict(data)


# ----------------------------------------------------------------------
# Property suite: incremental repair agrees with the from-scratch oracle
# ----------------------------------------------------------------------
@st.composite
def small_applications(draw) -> TaskGraph:
    """Random small multi-rate chains with harmonic periods (cf. test_properties)."""
    base = draw(st.sampled_from([2, 4]))
    levels = [base, base * 2, base * 4]
    task_count = draw(st.integers(min_value=2, max_value=6))
    graph = TaskGraph(name="hypothesis-churn")
    names: list[str] = []
    for index in range(task_count):
        period = levels[min(index * len(levels) // task_count, len(levels) - 1)]
        wcet = draw(
            st.floats(min_value=0.1, max_value=period / 2, allow_nan=False, allow_infinity=False)
        )
        name = f"t{index}"
        graph.create_task(name, period=period, wcet=round(wcet, 2), memory=1.0)
        names.append(name)
    for index in range(1, task_count):
        producer = names[draw(st.integers(min_value=0, max_value=index - 1))]
        graph.connect(producer, names[index])
    return graph


@st.composite
def delta_timelines(draw, graph: TaskGraph) -> ChurnTimeline:
    """1-3 random deltas valid against ``graph`` (applied sequentially)."""
    deltas = []
    names = list(graph.task_names)
    count = draw(st.integers(min_value=1, max_value=3))
    fresh = 0
    for _ in range(count):
        kind = draw(st.sampled_from(["add", "remove", "drift"]))
        if kind == "remove" and len(names) > 1:
            victim = names.pop(draw(st.integers(0, len(names) - 1)))
            deltas.append(RemoveTask(name=victim))
        elif kind == "drift":
            target = draw(st.sampled_from(names))
            period = graph.task(target).period if target in graph else 4
            wcet = draw(st.floats(min_value=0.1, max_value=period / 2, allow_nan=False))
            deltas.append(WcetDrift(name=target, wcet=round(wcet, 2)))
        else:
            period = int(draw(st.sampled_from(graph.distinct_periods())))
            wcet = draw(st.floats(min_value=0.1, max_value=period / 4, allow_nan=False))
            name = f"fresh{fresh}"
            fresh += 1
            deltas.append(AddTask(name=name, period=period, wcet=round(wcet, 2)))
            names.append(name)
    return ChurnTimeline.of(*deltas)


_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def _prior_or_none(graph: TaskGraph, architecture: Architecture) -> RunResult | None:
    pipeline = Pipeline(provided_config(), graph=graph, architecture=architecture)
    try:
        prior = pipeline.run()
    except InfeasibleError:
        return None
    return prior if prior.feasible else None


def _scratch_feasible(graph: TaskGraph, architecture: Architecture) -> bool:
    try:
        result = Pipeline(
            provided_config("scratch-oracle"), graph=graph, architecture=architecture
        ).run()
    except (InfeasibleError, ConfigurationError):
        return False
    return bool(result.feasible)


@given(data=st.data(), graph=small_applications(), processors=st.integers(2, 3))
@_settings
def test_rebalance_agrees_with_scratch_oracle(data, graph, processors) -> None:
    """Scratch-feasible implies rebalance-feasible (the PR-8 repair contract).

    The implication is one-directional on purpose: the incremental repair
    keeps the prior placement as a warm start, so it can succeed on draws
    where the from-scratch heuristic happens to paint itself into a corner.
    The reverse (scratch feasible but repair infeasible) would be a real
    regression and fails here.
    """
    architecture = small_architecture(processors)
    prior = _prior_or_none(graph, architecture)
    if prior is None:
        return  # an unschedulable draw is not a failure of the library
    timeline = data.draw(delta_timelines(graph))
    try:
        post_graph, post_arch = timeline.apply(
            prior.balanced_schedule.graph, prior.balanced_schedule.architecture
        )
    except ReproError:
        return  # invalid delta draw (e.g. drift target already removed)

    rebalanced = Pipeline(
        provided_config(), graph=graph, architecture=architecture
    ).rebalance(prior, timeline)
    assert rebalanced.schema == RUN_SCHEMA_V2
    if _scratch_feasible(post_graph, post_arch):
        assert rebalanced.feasible, "from-scratch pipeline found a schedule but rebalance did not"
    if rebalanced.feasible:
        report = check_schedule(rebalanced.balanced_schedule, check_memory=False)
        assert report.is_feasible, report.summary()
        assert len(rebalanced.balanced_schedule) == post_graph.total_instances()


@given(graph=small_applications(), processors=st.integers(2, 3), victim=st.integers(0, 5))
@_settings
def test_remove_only_deltas_never_hurt(graph, processors, victim) -> None:
    """Removing load keeps feasibility and never increases the makespan."""
    if len(graph) < 2:
        return
    architecture = small_architecture(processors)
    prior = _prior_or_none(graph, architecture)
    if prior is None:
        return
    name = graph.task_names[victim % len(graph)]
    result = rebalance_run(prior, RemoveTask(name=name))
    assert result.feasible
    assert (
        result.balanced_schedule.makespan
        <= prior.balanced_schedule.makespan + 1e-9
    )


# ----------------------------------------------------------------------
# Churn scenario registry and the grid artifact
# ----------------------------------------------------------------------
EXPECTED_FAMILIES = {
    "arrival_burst",
    "departure_wave",
    "mixed_churn",
    "processor_loss",
    "wcet_drift",
}


class TestChurnScenarios:
    def test_builtin_families_are_registered(self):
        assert EXPECTED_FAMILIES <= set(available_churn_scenarios())
        assert list(available_churn_scenarios()) == sorted(available_churn_scenarios())

    def test_unknown_scenario_is_rejected(self):
        with pytest.raises(ConfigurationError, match="Unknown churn scenario"):
            churn_scenario_info("rapture")

    def test_workload_spec_is_deterministic_per_cell(self):
        spec = churn_scenario_info("arrival_burst")
        assert spec.workload_spec("tiny", 0) == spec.workload_spec("tiny", 0)
        assert spec.workload_spec("tiny", 0).seed != spec.workload_spec("tiny", 1).seed
        with pytest.raises(ConfigurationError, match="non-negative"):
            spec.workload_spec("tiny", -1)

    def test_timeline_is_deterministic_per_cell(self):
        spec = churn_scenario_info("wcet_drift")
        workload = generate_workload(spec.workload_spec("tiny", 0))
        first = spec.build_timeline(
            workload.graph, workload.architecture, "tiny", 0
        )
        second = spec.build_timeline(
            workload.graph, workload.architecture, "tiny", 0
        )
        assert first.digest() == second.digest()
        assert len(first) > 0

    def test_grid_cells_cover_every_family_and_seed(self):
        cells = list(churn_grid_cells("tiny"))
        scale = scenario_scale("tiny")
        assert len(cells) == len(available_churn_scenarios()) * scale.seeds
        assert {spec.name for spec, _ in cells} == set(available_churn_scenarios())

    def test_execute_cell_smoke(self):
        record = execute_churn_cell("departure_wave", "tiny", 0)
        assert record["scenario"] == "departure_wave"
        assert record["status"] in ("ok", "prior_infeasible")
        assert record["findings"] == []
        if record["status"] == "ok":
            assert record["steps"]
            for step in record["steps"]:
                assert step["rebalance_feasible"] == step["scratch_feasible"]


class TestChurnGridArtifact:
    @pytest.fixture(scope="class")
    def artifact(self) -> ChurnGridArtifact:
        return run_churn_grid("tiny", ("processor_loss",))

    def test_grid_run_is_clean(self, artifact):
        assert artifact.ok, artifact.findings
        assert artifact.schema == CHURN_SCHEMA
        assert artifact.counts["cells"] == scenario_scale("tiny").seeds
        assert "from-scratch oracle" in artifact.render()

    def test_round_trip_and_save_load(self, artifact, tmp_path):
        rebuilt = ChurnGridArtifact.from_dict(artifact.to_dict())
        assert rebuilt.to_dict() == artifact.to_dict()
        path = artifact.save(tmp_path / "grid.json")
        assert ChurnGridArtifact.load(path).to_dict() == artifact.to_dict()
        stamped = artifact.save(tmp_path)
        assert stamped.name.startswith("CHURN_") and stamped.suffix == ".json"

    def test_newer_schema_is_rejected(self, artifact):
        data = artifact.to_dict()
        data["schema"] = "repro-churn/9"
        with pytest.raises(ConfigurationError, match="schema"):
            ChurnGridArtifact.from_dict(data)
