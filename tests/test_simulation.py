"""Tests of repro.simulation (discrete-event replay, buffers, traces)."""

import pytest

from repro.core import balance_schedule
from repro.errors import ConfigurationError
from repro.simulation import (
    MediumResource,
    ProcessorResource,
    SimulationOptions,
    ViolationKind,
    replay,
    simulate,
)
from repro.workloads.paper_example import (
    paper_architecture,
    paper_initial_schedule,
    paper_task_graph,
)


class TestResources:
    def test_processor_resource_serialises(self):
        resource = ProcessorResource("P1")
        first = resource.execute(0.0, 2.0, "a")
        second = resource.execute(1.0, 2.0, "b")
        assert first == (0.0, 2.0)
        assert second == (2.0, 4.0)
        assert resource.busy_time == 4.0
        assert resource.utilization(8.0) == pytest.approx(0.5)

    def test_medium_contention(self):
        medium = MediumResource("bus", contention=True)
        assert medium.transfer(0.0, 1.0, "m1") == (0.0, 1.0)
        assert medium.transfer(0.5, 1.0, "m2") == (1.0, 2.0)

    def test_medium_without_contention(self):
        medium = MediumResource("bus", contention=False)
        assert medium.transfer(0.0, 1.0, "m1") == (0.0, 1.0)
        assert medium.transfer(0.5, 1.0, "m2") == (0.5, 1.5)


class TestPaperExampleSimulation:
    def test_clean_replay(self, paper_schedule):
        result = simulate(paper_schedule, SimulationOptions(hyper_periods=2))
        assert result.is_clean
        assert result.makespan == pytest.approx(15.0 + 12.0)
        assert len(result.trace.records) == 20

    def test_buffer_peaks_match_multirate_semantics(self, paper_schedule):
        result = simulate(paper_schedule)
        peaks = result.memory.peak_buffers()
        # P2 buffers the 2 samples of a needed by b; P3 buffers 2 samples of b
        # (for d) plus 2 samples of c (for e).
        assert peaks["P2"] == pytest.approx(2.0)
        assert peaks["P3"] == pytest.approx(4.0)
        assert peaks["P1"] == pytest.approx(0.0)
        assert result.memory.outstanding() == 0

    def test_peak_memory_includes_static(self, paper_schedule):
        result = simulate(paper_schedule)
        assert result.peak_memory()["P1"] == pytest.approx(16.0)
        assert result.peak_memory()["P3"] == pytest.approx(8.0)

    def test_balanced_schedule_also_clean(self, paper_schedule):
        balanced = balance_schedule(paper_schedule).balanced_schedule
        result = simulate(balanced, SimulationOptions(hyper_periods=2))
        assert result.is_clean

    def test_utilisation_and_summary(self, paper_schedule):
        result = simulate(paper_schedule)
        assert 0.0 < result.processor_utilization()["P1"] <= 1.0
        assert "peak memory" in result.summary()

    def test_gantt_rendering(self, paper_schedule):
        result = simulate(paper_schedule)
        chart = result.trace.gantt(width=40)
        assert "P1" in chart and "#" in chart

    def test_events_recorded_and_ordered(self, paper_schedule):
        result = simulate(paper_schedule)
        events = result.trace.sorted_events()
        assert events, "no events recorded"
        times = [event.time for event in events]
        assert times == sorted(times)

    def test_events_can_be_disabled(self, paper_schedule):
        result = simulate(paper_schedule, SimulationOptions(record_events=False))
        assert result.trace.events == []
        assert result.trace.records  # execution records are always kept


class TestTransferRecords:
    def test_transfers_match_schedule_communications(self, paper_schedule):
        # Contention-free replay: the analytic fixed-C model holds exactly.
        result = replay(paper_schedule, hyper_periods=1)
        by_key = {
            (tr.producer, tr.producer_index, tr.consumer, tr.consumer_index): tr
            for tr in result.trace.transfers
        }
        assert len(by_key) == len(result.trace.transfers)
        assert len(by_key) == len(paper_schedule.communications)
        for op in paper_schedule.communications:
            transfer = by_key[(op.producer, op.producer_index, op.consumer, op.consumer_index)]
            assert transfer.start == pytest.approx(op.start)
            assert transfer.arrival == pytest.approx(op.arrival)
            assert transfer.medium == op.medium
            assert transfer.data_size == pytest.approx(op.data_size)
            assert (transfer.source, transfer.target) == (op.source, op.target)

    def test_contention_delays_transfers_past_the_analytic_start(self, paper_schedule):
        result = simulate(paper_schedule)  # default: contention on
        by_key = {
            (tr.producer, tr.producer_index, tr.consumer, tr.consumer_index): tr
            for tr in result.trace.transfers
        }
        delayed = 0
        for op in paper_schedule.communications:
            transfer = by_key[(op.producer, op.producer_index, op.consumer, op.consumer_index)]
            assert transfer.start >= op.start - 1e-9
            delayed += transfer.start > op.start + 1e-9
        assert delayed > 0  # the bus serialises at least one pair

    def test_transfers_recorded_even_without_events(self, paper_schedule):
        result = simulate(paper_schedule, SimulationOptions(record_events=False))
        assert result.trace.events == []
        assert result.trace.transfers

    def test_transfers_unrolled_per_repetition(self, paper_schedule):
        result = simulate(paper_schedule, SimulationOptions(hyper_periods=3))
        per_rep = len(paper_schedule.communications)
        assert len(result.trace.transfers) == 3 * per_rep
        assert {tr.repetition for tr in result.trace.transfers} == {0, 1, 2}


class TestDeterminism:
    """Satellite pin: repeated ``simulate`` calls with the same options are
    bit-identical, down to every recorded event, interval and memory sample."""

    def test_repeated_simulate_is_bit_identical(self, paper_schedule):
        options = SimulationOptions(hyper_periods=2)
        first = simulate(paper_schedule, options)
        second = simulate(paper_schedule, options)
        assert first.to_dict() == second.to_dict()

    def test_default_options_are_shared_and_frozen(self, paper_schedule):
        first = simulate(paper_schedule)
        second = simulate(paper_schedule)
        assert first.options is second.options  # hoisted module-level default
        with pytest.raises((AttributeError, TypeError)):
            first.options.hyper_periods = 5

    def test_independent_schedule_builds_replay_identically(self):
        """Two separately constructed (equal) schedules replay identically —
        no hidden per-object state leaks into the trace."""
        first = simulate(paper_initial_schedule(), SimulationOptions(hyper_periods=2))
        second = simulate(
            paper_initial_schedule(paper_task_graph(), paper_architecture()),
            SimulationOptions(hyper_periods=2),
        )
        assert first.to_dict() == second.to_dict()

    def test_replay_entry_point_is_contention_free(self, paper_schedule):
        result = replay(paper_schedule)
        assert result.options.hyper_periods == 2
        assert not result.options.medium_contention
        assert result.to_dict() == replay(paper_schedule).to_dict()

    def test_balanced_schedule_deterministic_with_contention(self, paper_schedule):
        balanced = balance_schedule(paper_schedule).balanced_schedule
        options = SimulationOptions(hyper_periods=2, medium_contention=True)
        assert simulate(balanced, options).to_dict() == simulate(balanced, options).to_dict()


class TestViolationDetection:
    def test_infeasible_schedule_reports_violations(self, paper_schedule):
        broken = paper_schedule.moved({("d", 0): ("P3", 2.0)})
        result = simulate(broken)
        assert not result.is_clean
        kinds = {violation.kind for violation in result.violations}
        assert ViolationKind.DATA_NOT_READY in kinds

    def test_memory_overflow_detected(self, paper_graph):
        arch = paper_architecture(memory_capacity=10.0)
        schedule = paper_initial_schedule(paper_graph, arch)
        result = simulate(schedule)
        kinds = {violation.kind for violation in result.violations}
        assert ViolationKind.MEMORY_OVERFLOW in kinds

    def test_invalid_options_rejected(self, paper_schedule):
        with pytest.raises(ConfigurationError):
            simulate(paper_schedule, SimulationOptions(hyper_periods=0))
