"""Tests of repro.core.blocks (block construction and categories)."""

import pytest

from repro.core.blocks import Block, BlockBuildOptions, BlockCategory, blocks_by_processor, build_blocks
from repro.errors import SchedulingError
from repro.scheduling.schedule import ScheduledInstance


class TestPaperExampleBlocks:
    def test_seven_blocks(self, paper_schedule):
        blocks = build_blocks(paper_schedule)
        assert len(blocks) == 7

    def test_labels_and_order(self, paper_schedule):
        blocks = build_blocks(paper_schedule)
        assert [b.label for b in blocks] == [
            "[a#0]",
            "[a#1]",
            "[b#0-c#0]",
            "[a#2]",
            "[a#3]",
            "[b#1-c#1]",
            "[d#0-e#0]",
        ]

    def test_categories(self, paper_schedule):
        blocks = {b.label: b for b in build_blocks(paper_schedule)}
        assert blocks["[a#0]"].category is BlockCategory.FIRST_INSTANCES
        assert blocks["[a#1]"].category is BlockCategory.LATER_INSTANCES
        assert blocks["[b#0-c#0]"].category is BlockCategory.FIRST_INSTANCES
        assert blocks["[b#1-c#1]"].category is BlockCategory.LATER_INSTANCES
        assert blocks["[d#0-e#0]"].category is BlockCategory.FIRST_INSTANCES

    def test_aggregate_attributes(self, paper_schedule):
        blocks = {b.label: b for b in build_blocks(paper_schedule)}
        bc = blocks["[b#0-c#0]"]
        assert bc.execution_time == pytest.approx(2.0)
        assert bc.memory == pytest.approx(2.0)
        assert bc.start == pytest.approx(5.0)
        assert bc.end == pytest.approx(7.0)
        assert bc.span == pytest.approx(2.0)
        assert bc.tasks == ("b", "c")
        assert bc.first_instance_tasks == ("b", "c")
        assert bc.offsets()[("c", 0)] == pytest.approx(1.0)

    def test_blocks_by_processor(self, paper_schedule):
        grouped = blocks_by_processor(build_blocks(paper_schedule))
        assert len(grouped["P1"]) == 4
        assert len(grouped["P2"]) == 2
        assert len(grouped["P3"]) == 1

    def test_every_instance_in_exactly_one_block(self, paper_schedule):
        blocks = build_blocks(paper_schedule)
        keys = [key for block in blocks for key in block.member_keys]
        assert len(keys) == len(set(keys)) == len(paper_schedule)


class TestBuildOptions:
    def test_without_dependence_requirement_groups_contiguous_runs(self, paper_schedule):
        loose = build_blocks(paper_schedule, BlockBuildOptions(require_dependence=False))
        # The grouping can only get coarser or equal.
        assert len(loose) <= len(build_blocks(paper_schedule))

    def test_gap_tolerance_merges_nearby_instances(self, paper_schedule):
        coarse = build_blocks(paper_schedule, BlockBuildOptions(gap_tolerance=10.0))
        strict = build_blocks(paper_schedule)
        assert len(coarse) <= len(strict)

    def test_negative_gap_rejected(self, paper_schedule):
        with pytest.raises(SchedulingError):
            build_blocks(paper_schedule, BlockBuildOptions(gap_tolerance=-1.0))


class TestBlockValidation:
    def test_block_requires_members(self):
        with pytest.raises(SchedulingError):
            Block(id=0, processor="P1", members=(), category=BlockCategory.FIRST_INSTANCES)

    def test_block_rejects_mixed_processors(self):
        members = (
            ScheduledInstance("a", 0, "P1", 0.0, 1.0),
            ScheduledInstance("b", 0, "P2", 1.0, 1.0),
        )
        with pytest.raises(SchedulingError):
            Block(id=0, processor="P1", members=members, category=BlockCategory.FIRST_INSTANCES)

    def test_contains(self, paper_schedule):
        block = build_blocks(paper_schedule)[2]
        assert block.contains(("b", 0))
        assert not block.contains(("a", 0))
