"""Tests of the unified ``repro.api`` surface.

Covers the satellite checklist of the API-redesign PR:

* every registered balancer runs end-to-end on the paper example and on a
  small random workload, returning a uniform :class:`BalanceOutcome`;
* ``PipelineConfig`` dict round trip (property-tested with hypothesis);
* the CLI ``run --config`` golden test — a serialised ``paper_example``
  config reproduces ``repro-lb example`` byte-identically;
* E6 consumers read the verdict straight off the outcome (no re-running of
  ``check_schedule``), and the baselines report infeasibility through the
  same ``feasible``/``violations`` fields the heuristic uses;
* campaign manifests store the ``RunResult`` artifact verbatim.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    BalanceOutcome,
    Balancer,
    Pipeline,
    PipelineConfig,
    RunResult,
    available_balancers,
    balance,
    balancer_info,
    get_balancer,
)
from repro.api.config import (
    BalanceStage,
    ReportStage,
    ScheduleStage,
    VerifyStage,
    WorkloadStage,
)
from repro.baselines import lpt_assignment, no_balancing, optimal_memory_assignment
from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments import run_pipeline_campaign
from repro.metrics.report import ScheduleReport
from repro.scheduling import check_schedule
from repro.scheduling.heuristic import PlacementPolicy
from repro.workloads import GraphShape, WorkloadSpec, scheduled_workload

EXPECTED_BALANCERS = {
    "paper",
    "no_balancing",
    "greedy_load",
    "bin_packing",
    "memory_balancer",
    "genetic",
    "branch_and_bound",
}


@pytest.fixture(scope="module")
def random_schedule():
    """A small synthetic workload with a feasible initial schedule."""
    spec = WorkloadSpec(
        task_count=12,
        processor_count=3,
        utilization=0.3,
        shape=GraphShape.PIPELINE,
        seed=5,
        label="api-random",
    )
    _workload, schedule = scheduled_workload(spec)
    return schedule


class TestRegistry:
    def test_all_strategies_registered(self):
        assert set(available_balancers()) == EXPECTED_BALANCERS

    def test_entries_implement_the_protocol(self):
        for name in available_balancers():
            assert isinstance(get_balancer(name), Balancer)

    def test_unknown_balancer_rejected(self, paper_schedule):
        with pytest.raises(ConfigurationError, match="Unknown balancer"):
            balance(paper_schedule, "simulated_annealing")

    def test_unknown_parameter_rejected(self, paper_schedule):
        with pytest.raises(ConfigurationError, match="does not accept"):
            balance(paper_schedule, "paper", temperature=3)

    def test_unknown_cost_policy_rejected(self, paper_schedule):
        with pytest.raises(ConfigurationError, match="Unknown cost policy"):
            balance(paper_schedule, "paper", policy="median")

    def test_config_mapping_form(self, paper_schedule):
        outcome = balance(
            paper_schedule,
            {"balancer": "paper", "params": {"policy": "lexicographic"}},
        )
        assert outcome.makespan_after == 14.0
        with pytest.raises(ConfigurationError, match="not both"):
            balance(paper_schedule, {"balancer": "paper"}, policy="ratio")

    def test_registry_descriptions_exposed(self):
        spec = balancer_info("paper")
        assert "Algorithm 3.2" in spec.description
        assert "policy" in spec.params


class TestEveryBalancerEndToEnd:
    @pytest.mark.parametrize("name", sorted(EXPECTED_BALANCERS))
    def test_on_paper_example(self, paper_schedule, name):
        outcome = balance(paper_schedule, name)
        self._check_outcome(outcome, paper_schedule, name)

    @pytest.mark.parametrize("name", sorted(EXPECTED_BALANCERS))
    def test_on_random_workload(self, random_schedule, name):
        outcome = balance(random_schedule, name)
        self._check_outcome(outcome, random_schedule, name)

    @staticmethod
    def _check_outcome(outcome: BalanceOutcome, initial, name: str) -> None:
        assert outcome.balancer == name
        assert outcome.initial_schedule is initial
        # Uniform verdict: what the outcome reports must agree with an
        # independent run of the checker.
        assert outcome.feasible == check_schedule(
            outcome.schedule, check_memory=False
        ).is_feasible
        assert outcome.feasible == (not outcome.violations)
        # The schedule keeps every instance and every processor of the input.
        assert len(outcome.schedule) == len(initial)
        processors = set(initial.architecture.processor_names)
        assert set(outcome.memory_by_processor) == processors
        # One trace entry per block, uniform shape.
        assert outcome.trace
        for entry in outcome.trace:
            assert {"block", "from", "to", "moved"} <= set(entry)
            assert entry["to"] in processors
        assert outcome.moves == sum(1 for e in outcome.trace if e["moved"])
        json.dumps(outcome.to_dict())  # must be JSON-serialisable as written

    def test_no_balancing_is_identity(self, paper_schedule):
        outcome = balance(paper_schedule, "no_balancing")
        assert outcome.schedule is paper_schedule
        assert outcome.moves == 0
        assert outcome.feasible

    def test_paper_reaches_every_cost_policy(self, paper_schedule):
        lex = balance(paper_schedule, "paper", policy="lexicographic")
        ratio = balance(paper_schedule, "paper", policy="ratio")
        strict = balance(paper_schedule, "paper", policy="ratio_strict")
        assert lex.makespan_after == 14.0
        assert lex.max_memory == 10.0
        assert ratio.makespan_after == 15.0
        assert strict.feasible in (True, False)


class TestAssignmentVerdicts:
    """Satellite: baselines report infeasibility through the same fields."""

    def test_baselines_carry_the_verdict(self, paper_schedule):
        assert no_balancing(paper_schedule).feasible is True
        lpt = lpt_assignment(paper_schedule)
        assert lpt.feasible == check_schedule(
            lpt.schedule, check_memory=False
        ).is_feasible
        assert lpt.feasible == (not lpt.violations)

    def test_branch_and_bound_assignment(self, paper_schedule):
        result = optimal_memory_assignment(paper_schedule)
        assert result.info["exact"] == 1.0
        # The exact partition reaches the optimal maximum memory: 24 units
        # over 3 processors cannot do better than 8.
        assert result.max_memory == 8.0


# ----------------------------------------------------------------------
# PipelineConfig round trip (property test)
# ----------------------------------------------------------------------
def _spec_strategy() -> st.SearchStrategy[WorkloadSpec]:
    return st.builds(
        WorkloadSpec,
        task_count=st.integers(min_value=1, max_value=500),
        processor_count=st.integers(min_value=1, max_value=16),
        utilization=st.floats(min_value=0.05, max_value=0.9, allow_nan=False),
        base_period=st.sampled_from([10, 20, 40]),
        shape=st.sampled_from(list(GraphShape)),
        memory_range=st.tuples(
            st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
            st.floats(min_value=5.0, max_value=20.0, allow_nan=False),
        ),
        memory_capacity=st.sampled_from([float("inf"), 40.0, 100.0]),
        seed=st.integers(min_value=0, max_value=2**31),
        label=st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz-0123456789", max_size=12
        ),
    )


def _config_strategy() -> st.SearchStrategy[PipelineConfig]:
    workload = st.one_of(
        st.builds(WorkloadStage, kind=st.just("spec"), spec=_spec_strategy()),
        st.just(WorkloadStage(kind="paper_example")),
        st.just(WorkloadStage(kind="provided")),
    )
    params = st.one_of(
        st.just({}),
        st.just({"policy": "lexicographic"}),
        st.just({"policy": "ratio", "protect_unmoved": True}),
        st.just({"population_size": 10, "generations": 5}),
        st.just({"node_limit": 1000}),
    )
    return st.builds(
        PipelineConfig,
        workload=workload,
        schedule=st.builds(
            ScheduleStage, policy=st.sampled_from([p.value for p in PlacementPolicy])
        ),
        balance=st.builds(
            BalanceStage,
            balancer=st.sampled_from(sorted(EXPECTED_BALANCERS)),
            params=params,
        ),
        verify=st.builds(
            VerifyStage, enabled=st.booleans(), check_memory=st.booleans()
        ),
        report=st.builds(
            ReportStage,
            enabled=st.booleans(),
            describe_workload=st.booleans(),
            show_schedules=st.booleans(),
            steps=st.booleans(),
            compare=st.booleans(),
            simulate=st.booleans(),
            simulate_hyper_periods=st.integers(min_value=1, max_value=4),
        ),
        label=st.text(alphabet="abcdefghijklmnopqrstuvwxyz-", max_size=10),
    )


class TestPipelineConfigRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(config=_config_strategy())
    def test_dict_round_trip(self, config):
        assert PipelineConfig.from_dict(config.to_dict()) == config

    @settings(max_examples=30, deadline=None)
    @given(config=_config_strategy())
    def test_json_round_trip(self, config):
        # Through an actual JSON string, as `repro-lb run --config` reads it.
        text = json.dumps(config.to_dict())
        assert PipelineConfig.from_dict(json.loads(text)) == config

    def test_schema_mismatch_rejected(self):
        data = PipelineConfig.paper_example().to_dict()
        data["schema"] = "repro-pipeline/99"
        with pytest.raises(ConfigurationError, match="schema"):
            PipelineConfig.from_dict(data)

    def test_unknown_keys_rejected(self):
        data = PipelineConfig.paper_example().to_dict()
        data["extra"] = 1
        with pytest.raises(ConfigurationError, match="Unknown"):
            PipelineConfig.from_dict(data)
        with pytest.raises(ConfigurationError, match="workload"):
            PipelineConfig.from_dict({"schema": "repro-pipeline/1"})

    def test_spec_required_for_spec_kind(self):
        with pytest.raises(ConfigurationError, match="requires a workload spec"):
            WorkloadStage(kind="spec")
        with pytest.raises(ConfigurationError, match="Unknown workload kind"):
            WorkloadStage(kind="mystery")


# ----------------------------------------------------------------------
# Pipeline + RunResult
# ----------------------------------------------------------------------
class TestPipeline:
    def test_paper_example_run(self):
        result = Pipeline(PipelineConfig.paper_example()).run()
        assert result.feasible is True
        assert result.balancer == "paper"
        assert result.metrics["makespan_after"] == 14.0
        assert result.metrics["memory_after"] == {"P1": 10.0, "P2": 6.0, "P3": 8.0}
        assert result.workload_description == ""
        assert "Balanced schedule (Figure 4):" in result.report
        assert {"workload", "schedule", "balance", "verify", "report"} <= set(
            result.timings
        )
        # The trace records the paper's three cross-processor moves.
        assert sum(1 for e in result.trace if e["moved"]) == 3

    def test_synthetic_run_any_balancer(self):
        spec = WorkloadSpec(
            task_count=10, processor_count=2, utilization=0.3,
            shape=GraphShape.PIPELINE, seed=2, label="api-pipe",
        )
        config = PipelineConfig.synthetic(spec, balancer="bin_packing")
        result = Pipeline(config).run()
        assert result.balancer == "bin_packing"
        assert result.workload_description.startswith("api-pipe:")
        assert result.config == config.to_dict()

    def test_provided_workload_requires_objects(self, small_graph, small_arch):
        config = PipelineConfig(workload=WorkloadStage(kind="provided"))
        with pytest.raises(ConfigurationError, match="provided"):
            Pipeline(config)
        result = Pipeline(config, graph=small_graph, architecture=small_arch).run()
        assert result.feasible is True

    def test_declarative_kinds_reject_objects(self, small_graph, small_arch):
        with pytest.raises(ConfigurationError, match="declarative"):
            Pipeline(
                PipelineConfig.paper_example(),
                graph=small_graph,
                architecture=small_arch,
            )

    def test_verify_disabled_reports_none(self):
        config = PipelineConfig(
            workload=WorkloadStage(kind="paper_example"),
            verify=VerifyStage(enabled=False),
        )
        result = Pipeline(config).run()
        assert result.feasible is None
        assert result.metrics["balancer_feasible"] is True

    def test_run_result_round_trip(self):
        result = Pipeline(PipelineConfig.paper_example(steps=True)).run()
        data = result.to_dict()
        json.dumps(data)
        again = RunResult.from_dict(data)
        assert again.to_dict() == data
        with pytest.raises(ConfigurationError, match="schema"):
            RunResult.from_dict({**data, "schema": "repro-run/99"})


# ----------------------------------------------------------------------
# CLI golden tests
# ----------------------------------------------------------------------
class TestCliRunConfig:
    def test_run_config_reproduces_example_byte_identically(self, tmp_path, capsys):
        """Acceptance criterion: `run --config` == `example` byte for byte."""
        config_path = tmp_path / "example.json"
        config_path.write_text(
            json.dumps(PipelineConfig.paper_example(steps=True).to_dict())
        )
        assert main(["run", "--config", str(config_path)]) == 0
        from_config = capsys.readouterr().out
        assert main(["example", "--steps"]) == 0
        from_example = capsys.readouterr().out
        assert from_config == from_example
        assert "step 7" in from_config

    def test_run_config_json_flag(self, tmp_path, capsys):
        config_path = tmp_path / "example.json"
        config_path.write_text(json.dumps(PipelineConfig.paper_example().to_dict()))
        assert main(["run", "--config", str(config_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-run/1"
        assert payload["feasible"] is True
        assert payload["metrics"]["makespan_after"] == 14.0

    def test_run_config_missing_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["run", "--config", str(missing)]) == 2
        err = capsys.readouterr().err
        assert "Cannot read pipeline config" in err
        assert str(missing) in err

    def test_run_config_invalid_json(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["run", "--config", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_run_config_bad_schema_is_reported(self, tmp_path, capsys):
        path = tmp_path / "stale.json"
        data = PipelineConfig.paper_example().to_dict()
        data["schema"] = "repro-pipeline/0"
        path.write_text(json.dumps(data))
        assert main(["run", "--config", str(path)]) == 2
        assert "schema" in capsys.readouterr().err


class TestCliJsonFlags:
    def test_example_json(self, capsys):
        assert main(["example", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["balancer"] == "paper"
        assert payload["metrics"]["memory_after"] == {
            "P1": 10.0, "P2": 6.0, "P3": 8.0,
        }

    def test_random_json(self, capsys):
        code = main([
            "random", "--tasks", "10", "--processors", "2",
            "--shape", "pipeline", "--seed", "3", "--json",
        ])
        assert code in (0, 1)
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-run/1"
        assert payload["workload_description"].startswith("cli-pipeline-3")

    def test_random_other_balancer(self, capsys):
        code = main([
            "random", "--tasks", "10", "--processors", "2",
            "--shape", "pipeline", "--seed", "3", "--balancer", "greedy_load",
            "--json",
        ])
        assert code in (0, 1)
        payload = json.loads(capsys.readouterr().out)
        assert payload["balancer"] == "greedy_load"

    def test_experiment_json(self, capsys):
        assert main(["experiment", "E1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["experiment"] == "E1"
        assert payload[0]["passed"] is True

    def test_exit_code_reflects_feasibility_in_both_modes(self, tmp_path, capsys):
        """`example`, `random` and `run` share one exit-code rule: 1 when the
        verified schedule is infeasible, regardless of output format."""
        config = PipelineConfig(
            workload=WorkloadStage(kind="paper_example"),
            balance=BalanceStage(balancer="bin_packing"),
        )
        path = tmp_path / "infeasible.json"
        path.write_text(json.dumps(config.to_dict()))
        assert main(["run", "--config", str(path)]) == 1
        capsys.readouterr()
        assert main(["run", "--config", str(path), "--json"]) == 1

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPECTED_BALANCERS:
            assert name in output
        assert "E1" in output and "E8" in output
        for preset in ("tiny", "quick", "full"):
            assert preset in output
        assert "lexicographic" in output
        assert "churn scenarios" in output

    def test_list_command_json_catalog(self, capsys):
        assert main(["list", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert "balancers" in catalog
        assert {"paper"} <= {entry["name"] for entry in catalog["balancers"]}
        # Every section is the same shape: a list of {name, summary} rows.
        for section, entries in catalog.items():
            assert isinstance(section, str) and entries
            for entry in entries:
                assert set(entry) == {"name", "summary"}


# ----------------------------------------------------------------------
# Rewired consumers stay golden
# ----------------------------------------------------------------------
class TestRewiredConsumers:
    def test_e6_verdicts_match_independent_checks(self):
        """E6 reads outcome.feasible; it must equal a from-scratch check."""
        from repro.experiments.runner import _strategy_outcomes

        spec = WorkloadSpec(
            task_count=12, processor_count=3, utilization=0.3,
            shape=GraphShape.PIPELINE, seed=1, label="e6-verdict",
        )
        _workload, schedule = scheduled_workload(spec)
        outcomes = _strategy_outcomes(schedule)
        assert set(outcomes) == {
            "initial (no balancing)",
            "proposed (ratio)",
            "proposed (lexicographic)",
            "load-only (memory-blind)",
            "memory-only (Theorem 2)",
            "proposed (conservative)",
            "LPT assignment",
            "FFD memory packing",
            "genetic assignment",
        }
        for outcome in outcomes.values():
            assert outcome.feasible == check_schedule(
                outcome.schedule, check_memory=False
            ).is_feasible

    def test_campaign_run_ids_are_filesystem_safe(self, tmp_path):
        from repro.experiments import plan_pipeline_campaign

        config = PipelineConfig(
            workload=WorkloadStage(kind="paper_example"), label="sweep/run 1"
        )
        (run,) = plan_pipeline_campaign([config])
        assert "/" not in run.run_id and " " not in run.run_id
        summary = run_pipeline_campaign([config], output_dir=tmp_path, jobs=1)
        assert summary.ok

    def test_pipeline_campaign_stores_run_result_verbatim(self, tmp_path):
        configs = [
            PipelineConfig.paper_example(),
            PipelineConfig.paper_example(policy="ratio"),
        ]
        summary = run_pipeline_campaign(configs, output_dir=tmp_path, jobs=1)
        assert summary.ok
        assert len(summary.records) == 2
        manifest = json.loads(
            (tmp_path / "runs" / f"{summary.records[0]['run_id']}.json").read_text()
        )
        stored = RunResult.from_dict(manifest["run_result"])
        assert stored.to_dict() == manifest["run_result"]  # verbatim
        assert stored.metrics["makespan_after"] == 14.0
        # Re-running resumes from the cached manifests.
        resumed = run_pipeline_campaign(
            configs, output_dir=tmp_path, jobs=1, resume=True
        )
        assert [record["status"] for record in resumed.records] == ["cached", "cached"]


class TestScheduleReportToDict:
    def test_machine_readable_report(self, paper_schedule):
        data = ScheduleReport.of("initial", paper_schedule).to_dict()
        json.dumps(data)
        assert data["label"] == "initial"
        assert data["makespan"]["makespan"] == 15.0
        assert data["memory"]["by_processor"] == {"P1": 16.0, "P2": 4.0, "P3": 4.0}
        assert 0.0 <= data["load"]["idle_fraction"] <= 1.0
