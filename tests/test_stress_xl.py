"""Tests of the ``stress-xl`` scaling tier and the exponent gate.

The tier's contract: one ``XL-<N>`` record per tier point, an ``XL-curve``
record carrying the fitted ``time ∝ N^exponent`` slope, and a ``compare()``
that fails on *shape* — the current exponent exceeding the baseline's by more
than ``exponent_margin`` — even when every wall time is inside the tolerance.
"""

from __future__ import annotations

import math

import pytest

from repro.bench import (
    BenchArtifact,
    BenchmarkRecord,
    compare,
    fit_scaling_exponent,
    run_stress_xl_bench,
)
from repro.bench.stress_xl import EXPONENT_CEILING, XL_CURVE_NAME, XL_PRESETS
from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.jsonio import dumps


# ----------------------------------------------------------------------
# The scaling fit
# ----------------------------------------------------------------------
class TestFitScalingExponent:
    def test_recovers_a_known_power_law(self) -> None:
        counts = [100, 200, 400, 800]
        seconds = [0.004 * (n / 100) ** 1.5 for n in counts]
        exponent, r_squared = fit_scaling_exponent(counts, seconds)
        assert math.isclose(exponent, 1.5, abs_tol=1e-9)
        assert math.isclose(r_squared, 1.0, abs_tol=1e-9)

    def test_noisy_fit_reports_imperfect_r_squared(self) -> None:
        exponent, r_squared = fit_scaling_exponent([100, 200, 400], [1.0, 1.6, 4.4])
        assert 0.0 < r_squared < 1.0
        assert 0.5 < exponent < 1.5

    def test_needs_two_points(self) -> None:
        with pytest.raises(ConfigurationError, match="two or more"):
            fit_scaling_exponent([100], [1.0])
        with pytest.raises(ConfigurationError, match="two or more"):
            fit_scaling_exponent([100, 200], [1.0])

    def test_needs_positive_times(self) -> None:
        with pytest.raises(ConfigurationError, match="positive"):
            fit_scaling_exponent([100, 200], [1.0, 0.0])


# ----------------------------------------------------------------------
# The tier runner (on a miniature preset so the test stays fast)
# ----------------------------------------------------------------------
class TestRunStressXl:
    @pytest.fixture(scope="class")
    def artifact(self) -> BenchArtifact:
        XL_PRESETS["test-mini"] = (40, 80)
        try:
            return run_stress_xl_bench(preset="test-mini", repeats=1)
        finally:
            del XL_PRESETS["test-mini"]

    def test_presets_are_sane(self) -> None:
        assert set(XL_PRESETS) == {"smoke", "xl"}
        for counts in XL_PRESETS.values():
            assert list(counts) == sorted(counts) and len(counts) >= 2
        assert max(XL_PRESETS["smoke"]) < min(XL_PRESETS["xl"])

    def test_record_per_tier_point_plus_curve(self, artifact: BenchArtifact) -> None:
        assert [record.name for record in artifact.records] == [
            "XL-40",
            "XL-80",
            XL_CURVE_NAME,
        ]
        assert artifact.preset == "stress-xl-test-mini"
        for record in artifact.records[:-1]:
            assert record.passed is True
            assert len(record.wall_times) == 1
            for key in (
                "task_count",
                "schedule_seconds",
                "balance_seconds_best",
                "block_count",
                "moved_blocks",
                "evaluations",
            ):
                assert key in record.metrics

    def test_curve_record_carries_the_fit(self, artifact: BenchArtifact) -> None:
        curve = artifact.record(XL_CURVE_NAME)
        assert curve is not None
        assert curve.metrics["points"] == 2.0
        assert curve.metrics["exponent_ceiling"] == EXPONENT_CEILING
        assert math.isfinite(curve.metrics["fit_exponent"])
        assert curve.passed == (curve.metrics["fit_exponent"] <= EXPONENT_CEILING)

    def test_artifact_round_trips(self, artifact: BenchArtifact) -> None:
        reloaded = BenchArtifact.from_dict(artifact.to_dict())
        assert reloaded.record(XL_CURVE_NAME).metrics == artifact.record(
            XL_CURVE_NAME
        ).metrics
        assert reloaded.config["tier"] == "stress-xl"

    def test_unknown_preset_and_bad_repeats_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="Unknown stress-xl preset"):
            run_stress_xl_bench(preset="galactic")
        with pytest.raises(ConfigurationError, match="repeats"):
            run_stress_xl_bench(repeats=0)


# ----------------------------------------------------------------------
# The exponent gate in compare()
# ----------------------------------------------------------------------
def _curve_artifact(exponent: float | None, best: float = 1.0) -> BenchArtifact:
    metrics = {"fit_exponent": exponent} if exponent is not None else {}
    return BenchArtifact.now(
        preset="stress-xl-smoke",
        config={},
        records=[
            BenchmarkRecord(
                name=XL_CURVE_NAME,
                title="curve",
                wall_times=[best],
                metrics=metrics,
                passed=True,
            )
        ],
    )


class TestExponentGate:
    def test_within_margin_passes(self) -> None:
        report = compare(_curve_artifact(1.1), _curve_artifact(1.3), min_delta=10.0)
        assert report.ok

    def test_above_margin_fails_despite_the_noise_floor(self) -> None:
        # best times are identical and below min_delta: only the exponent
        # can fail this comparison — and it must.
        report = compare(_curve_artifact(1.1), _curve_artifact(1.4), min_delta=10.0)
        assert not report.ok
        [entry] = report.regressions
        assert "scaling exponent" in entry.detail

    def test_missing_current_exponent_fails(self) -> None:
        report = compare(_curve_artifact(1.1), _curve_artifact(None), min_delta=10.0)
        assert not report.ok
        assert "missing" in report.regressions[0].detail

    def test_margin_is_configurable_and_serialised(self) -> None:
        report = compare(
            _curve_artifact(1.1),
            _curve_artifact(1.5),
            exponent_margin=0.5,
            min_delta=10.0,
        )
        assert report.ok
        assert report.to_dict()["exponent_margin"] == 0.5

    def test_negative_margin_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="exponent_margin"):
            compare(_curve_artifact(1.1), _curve_artifact(1.1), exponent_margin=-0.1)

    def test_verdict_regression_still_wins(self) -> None:
        current = _curve_artifact(1.1)
        current.records[0] = BenchmarkRecord(
            name=XL_CURVE_NAME,
            title="curve",
            wall_times=[1.0],
            metrics={"fit_exponent": 1.1},
            passed=False,
        )
        report = compare(_curve_artifact(1.1), current, min_delta=10.0)
        assert not report.ok
        assert "verdict" in report.regressions[0].detail


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestCli:
    def test_bench_compare_exponent_margin_flag(self, capsys, tmp_path) -> None:
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(dumps(_curve_artifact(1.1).to_dict()))
        current.write_text(dumps(_curve_artifact(1.5).to_dict()))
        common = [
            "bench",
            "compare",
            str(baseline),
            str(current),
            "--min-delta",
            "10",
        ]
        assert cli_main(common) == 1
        assert "scaling exponent" in capsys.readouterr().out
        assert cli_main(common + ["--exponent-margin", "0.5"]) == 0

    def test_bench_stress_xl_rejects_unknown_preset(self, capsys) -> None:
        with pytest.raises(SystemExit):
            cli_main(["bench", "stress-xl", "--preset", "galactic"])
