"""Tests of the adversarial scenario search (repro.search)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import regression as regression_module
from repro.scenarios import registry as registry_module
from repro.scenarios.regression import load_frozen, register_frozen
from repro.search import (
    BUDGETS,
    SEARCH_SCHEMA,
    ParamSpace,
    SearchArtifact,
    SearchOptions,
    available_objectives,
    evaluate_objective,
    freeze_counterexamples,
    minimize_spec,
    mutate_spec,
    objective_info,
    run_hunt,
    spec_size,
)
from repro.search.objectives import register_objective
from repro.workloads.spec import GraphShape, WorkloadSpec

import numpy as np


@pytest.fixture()
def isolated_registries(monkeypatch):
    """Copy-on-write scenario/frozen registries so tests can register freely."""
    monkeypatch.setattr(registry_module, "_REGISTRY", dict(registry_module._REGISTRY))
    monkeypatch.setattr(
        regression_module, "_REGISTERED", dict(regression_module._REGISTERED)
    )


class TestObjectiveRegistry:
    def test_objectives_are_registered(self):
        names = available_objectives()
        assert names == tuple(sorted(names))
        for expected in (
            "approx_ratio",
            "conformance_divergence",
            "paper_infeasible",
            "planted",
            "walltime_blowup",
        ):
            assert expected in names
            spec = objective_info(expected)
            assert spec.threshold > 0
            assert spec.title

    def test_unknown_objective_rejected(self):
        with pytest.raises(ConfigurationError):
            objective_info("nope")
        with pytest.raises(ConfigurationError):
            evaluate_objective("nope", WorkloadSpec())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_objective("planted", "dup", "dup", threshold=1.0)(lambda spec: None)

    def test_invalid_spec_is_a_dead_end_not_a_crash(self):
        # sensor_fusion needs >= 6 tasks; the generator's rejection must
        # score 0 instead of raising out of the search loop.
        spec = WorkloadSpec(task_count=3, processor_count=2, shape=GraphShape.SENSOR_FUSION)
        result = evaluate_objective("planted", spec)
        assert result.status == "invalid"
        assert result.score == 0.0

    def test_planted_scores_edge_probability(self):
        spec = WorkloadSpec(task_count=8, processor_count=2, edge_probability=0.25)
        result = evaluate_objective("planted", spec)
        assert result.status == "ok"
        assert result.score == pytest.approx(0.75)
        assert result.evidence["edge_probability"] == pytest.approx(0.25)

    def test_approx_ratio_reports_theorem2_fields(self):
        spec = WorkloadSpec(task_count=8, processor_count=2, seed=7)
        result = evaluate_objective("approx_ratio", spec)
        assert result.status == "ok"
        evidence = result.evidence
        assert evidence["bound"] == pytest.approx(1.5)
        assert 1.0 <= evidence["ratio"] <= evidence["bound"] + 1e-6
        assert evidence["exact"] is True


class TestHuntDriver:
    def test_hunt_is_deterministic(self):
        # The acceptance contract: same (objective, budget, seed) in, same
        # canonical artifact out — twice.
        first = run_hunt(SearchOptions(objective="approx_ratio", budget="tiny", seed=0))
        second = run_hunt(SearchOptions(objective="approx_ratio", budget="tiny", seed=0))
        assert json.dumps(first.canonical_dict(), sort_keys=True) == json.dumps(
            second.canonical_dict(), sort_keys=True
        )

    def test_planted_counterexample_found_and_minimised(self):
        artifact = run_hunt(SearchOptions(objective="planted", budget="tiny", seed=1))
        assert artifact.found
        assert artifact.evaluations["search"] == BUDGETS["tiny"]
        threshold = objective_info("planted").threshold
        for entry in artifact.counterexamples:
            assert entry["score"] >= threshold
            # The minimiser drives edge_probability to the planted optimum.
            assert entry["spec"]["edge_probability"] == pytest.approx(0.0)
            minimize = entry["provenance"]["minimize"]
            assert all(
                after <= before
                for before, after in zip(minimize["from_size"], minimize["to_size"])
            )
        fingerprints = [entry["fingerprint"] for entry in artifact.counterexamples]
        assert len(set(fingerprints)) == len(fingerprints)
        scores = [entry["score"] for entry in artifact.counterexamples]
        assert scores == sorted(scores, reverse=True)

    def test_history_records_every_evaluation(self):
        artifact = run_hunt(
            SearchOptions(objective="planted", evaluations=12, seed=3, minimize=False)
        )
        assert artifact.budget == "custom"
        search_entries = [e for e in artifact.history if e["phase"] in ("init", "sa", "ga")]
        assert len(search_entries) == 12
        assert [e["evaluation"] for e in artifact.history] == list(
            range(len(artifact.history))
        )
        phases = {entry["phase"] for entry in artifact.history}
        assert phases <= {"init", "sa", "ga", "confirm"}
        assert artifact.seed_chain["root"] == 3
        assert {"init", "sa", "ga"} <= set(artifact.seed_chain)

    def test_option_validation(self):
        with pytest.raises(ConfigurationError):
            run_hunt(SearchOptions(objective="nope"))
        with pytest.raises(ConfigurationError):
            run_hunt(SearchOptions(objective="planted", budget="huge"))
        with pytest.raises(ConfigurationError):
            run_hunt(SearchOptions(objective="planted", evaluations=0))
        with pytest.raises(ConfigurationError):
            run_hunt(SearchOptions(objective="planted", sa_fraction=1.5))
        with pytest.raises(ConfigurationError):
            run_hunt(SearchOptions(objective="planted", max_survivors=0))
        with pytest.raises(ConfigurationError):
            run_hunt(SearchOptions(objective="planted", minimize_evaluations=-1))

    def test_threshold_override(self):
        artifact = run_hunt(
            SearchOptions(
                objective="planted", evaluations=8, seed=0, threshold=0.5, minimize=False
            )
        )
        assert artifact.threshold == pytest.approx(0.5)
        for entry in artifact.counterexamples:
            assert entry["score"] >= 0.5


class TestMutation:
    def test_mutations_stay_in_bounds_and_validate(self):
        space = ParamSpace()
        rng = np.random.default_rng(0)
        spec = WorkloadSpec(task_count=10, processor_count=2)
        for _ in range(200):
            spec, ops = mutate_spec(spec, space, rng)
            assert ops
            spec.validate()
            assert space.task_count[0] <= spec.task_count <= space.task_count[1]
            assert space.utilization[0] <= spec.utilization <= space.utilization[1]
            assert 0.0 <= spec.edge_probability <= 1.0


class TestMinimizer:
    def test_minimiser_reaches_the_predicate_boundary(self):
        # fires iff task_count >= 5: single-step reductions exist all the way
        # down, so the greedy fixpoint is exactly the boundary.
        start = WorkloadSpec(task_count=20, processor_count=3, period_levels=3)

        def fires(spec: WorkloadSpec):
            return spec.task_count >= 5, float(spec.task_count)

        result = minimize_spec(start, fires)
        assert result.spec.task_count == 5
        assert result.spec.processor_count == 1
        assert result.spec.period_levels == 1
        assert result.evaluations <= 80
        assert all(
            after <= before
            for before, after in zip(spec_size(start), spec_size(result.spec))
        )
        assert any(not attempt["kept"] for attempt in result.trace)

    def test_budget_is_respected(self):
        start = WorkloadSpec(task_count=24, processor_count=4)
        calls = []

        def fires(spec: WorkloadSpec):
            calls.append(spec)
            return True, 1.0

        result = minimize_spec(start, fires, max_evaluations=5)
        assert result.evaluations == len(calls) == 5


class TestArtifact:
    def test_round_trip_and_canonical(self, tmp_path):
        artifact = run_hunt(
            SearchOptions(objective="planted", evaluations=10, seed=1, minimize=False)
        )
        path = artifact.save(tmp_path / "hunt.json")
        parsed = json.loads(path.read_text(), parse_constant=pytest.fail)
        assert parsed["schema"] == SEARCH_SCHEMA
        reloaded = SearchArtifact.load(path)
        assert reloaded.canonical_dict() == artifact.canonical_dict()
        canonical = artifact.canonical_dict()
        for volatile in ("created", "seconds", "environment"):
            assert volatile not in canonical
        target = artifact.save(tmp_path / "outdir")
        assert target.name.startswith("HUNT_")

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            SearchArtifact.from_dict({"schema": "repro-search/2"})


class TestFreeze:
    def _hunted(self):
        artifact = run_hunt(SearchOptions(objective="planted", budget="tiny", seed=1))
        assert artifact.found
        return artifact

    def test_freeze_round_trip(self, tmp_path, isolated_registries):
        artifact = self._hunted()
        registry = tmp_path / "regression.json"
        added = freeze_counterexamples(artifact, registry, limit=1)
        assert len(added) == 1
        entry = added[0]
        assert entry.name.startswith("regression/planted-")
        loaded = load_frozen(registry)
        assert [e.name for e in loaded] == [entry.name]
        assert loaded[0].spec == entry.spec
        assert loaded[0].evidence == entry.evidence

        # Registration turns the entry into a one-cell frozen grid family.
        names = register_frozen(registry)
        assert names == (entry.name,)
        scenario = registry_module.scenario_info(entry.name)
        assert scenario.frozen
        assert scenario.cell_count("tiny") == scenario.cell_count("full") == 1
        assert scenario.workload_spec("tiny", 0) == entry.spec
        with pytest.raises(ConfigurationError):
            scenario.workload_spec("tiny", 1)

    def test_freeze_is_idempotent(self, tmp_path):
        artifact = self._hunted()
        registry = tmp_path / "regression.json"
        first = freeze_counterexamples(artifact, registry)
        assert first
        again = freeze_counterexamples(artifact, registry)
        assert again == ()
        assert len(load_frozen(registry)) == len(first)

    def test_malformed_registry_rejected(self, tmp_path):
        bad = tmp_path / "regression.json"
        bad.write_text('{"schema": "repro-regression/9", "scenarios": []}')
        with pytest.raises(ConfigurationError):
            load_frozen(bad)
        bad.write_text("not json")
        with pytest.raises(ConfigurationError):
            load_frozen(bad)
        assert load_frozen(tmp_path / "missing.json") == ()


class TestHuntCli:
    def test_hunt_json_output(self, capsys):
        from repro.cli import main

        code = main(
            [
                "hunt",
                "--objective",
                "planted",
                "--evaluations",
                "10",
                "--seed",
                "1",
                "--no-minimize",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == SEARCH_SCHEMA
        assert payload["objective"] == "planted"

    def test_hunt_writes_artifact_and_freezes(self, tmp_path, capsys, isolated_registries):
        from repro.cli import main

        registry = tmp_path / "regression.json"
        out = tmp_path / "hunt.json"
        code = main(
            [
                "hunt",
                "--objective",
                "planted",
                "--budget",
                "tiny",
                "--seed",
                "1",
                "--freeze",
                "--registry",
                str(registry),
                "--output",
                str(out),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "frozen: regression/planted-" in output
        assert SearchArtifact.load(out).found
        assert load_frozen(registry)
