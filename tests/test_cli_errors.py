"""Every CLI verb must exit cleanly on malformed input — no tracebacks.

The contract tested here: a bad ``--config`` (or any other bad artifact
path / option value) exits with code 2 and a one-line stderr message naming
the offending path, for every verb that accepts one.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main

CONFIG_VERBS = ("run", "conform")


def _invoke(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured


@pytest.mark.parametrize("verb", CONFIG_VERBS)
class TestMalformedConfig:
    def test_missing_file_names_the_path(self, verb, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        code, captured = _invoke(capsys, verb, "--config", str(missing))
        assert code == 2
        assert f"repro-lb {verb}: error:" in captured.err
        assert str(missing) in captured.err
        assert "Traceback" not in captured.err

    def test_invalid_json_names_the_path(self, verb, tmp_path, capsys):
        bad = tmp_path / "broken.json"
        bad.write_text("{not json]")
        code, captured = _invoke(capsys, verb, "--config", str(bad))
        assert code == 2
        assert str(bad) in captured.err

    def test_non_object_payload_rejected(self, verb, tmp_path, capsys):
        bad = tmp_path / "list.json"
        bad.write_text("[1, 2, 3]")
        code, captured = _invoke(capsys, verb, "--config", str(bad))
        assert code == 2
        assert str(bad) in captured.err
        assert "JSON object" in captured.err
        assert "list" in captured.err

    def test_wrong_schema_rejected(self, verb, tmp_path, capsys):
        bad = tmp_path / "schema.json"
        bad.write_text(json.dumps({"schema": "repro-pipeline/99"}))
        code, captured = _invoke(capsys, verb, "--config", str(bad))
        assert code == 2
        assert "invalid pipeline config" in captured.err
        assert str(bad) in captured.err

    def test_validation_error_rejected(self, verb, tmp_path, capsys):
        # Schema accepted, but the payload fails semantic validation.
        bad = tmp_path / "invalid.json"
        bad.write_text(
            json.dumps(
                {
                    "schema": "repro-pipeline/1",
                    "workload": {"kind": "synthetic", "spec": {"task_count": 0}},
                }
            )
        )
        code, captured = _invoke(capsys, verb, "--config", str(bad))
        assert code == 2
        assert "invalid pipeline config" in captured.err
        assert str(bad) in captured.err


class TestConformSpecificErrors:
    def test_config_and_paper_are_mutually_exclusive(self, tmp_path, capsys):
        config = tmp_path / "c.json"
        config.write_text("{}")
        code, captured = _invoke(
            capsys, "conform", "--config", str(config), "--paper"
        )
        assert code == 2
        assert "mutually exclusive" in captured.err


class TestBenchCompareErrors:
    def test_missing_baseline_names_the_path(self, tmp_path, capsys):
        missing = tmp_path / "baseline.json"
        code, captured = _invoke(
            capsys, "bench", "compare", str(missing), str(missing)
        )
        assert code == 2
        assert str(missing) in captured.err

    def test_malformed_artifact_names_the_path(self, tmp_path, capsys):
        bad = tmp_path / "bench.json"
        bad.write_text("}{")
        code, captured = _invoke(capsys, "bench", "compare", str(bad), str(bad))
        assert code == 2
        assert str(bad) in captured.err


class TestRebalanceErrors:
    def test_grid_and_config_are_mutually_exclusive(self, tmp_path, capsys):
        config = tmp_path / "c.json"
        config.write_text("{}")
        code, captured = _invoke(
            capsys, "rebalance", "--grid", "--config", str(config)
        )
        assert code == 2
        assert "mutually exclusive" in captured.err

    def test_single_mode_needs_config_and_delta(self, tmp_path, capsys):
        config = tmp_path / "c.json"
        config.write_text("{}")
        code, captured = _invoke(capsys, "rebalance", "--config", str(config))
        assert code == 2
        assert "--delta" in captured.err

    def test_missing_delta_file_names_the_path(self, tmp_path, capsys):
        config = tmp_path / "c.json"
        config.write_text(
            json.dumps(
                {"schema": "repro-pipeline/1", "workload": {"kind": "paper_example"}}
            )
        )
        missing = tmp_path / "delta.json"
        code, captured = _invoke(
            capsys, "rebalance", "--config", str(config), "--delta", str(missing)
        )
        assert code == 2
        assert str(missing) in captured.err
        assert "Traceback" not in captured.err

    def test_bad_delta_kind_exits_cleanly(self, tmp_path, capsys):
        config = tmp_path / "c.json"
        config.write_text(
            json.dumps(
                {"schema": "repro-pipeline/1", "workload": {"kind": "paper_example"}}
            )
        )
        delta = tmp_path / "delta.json"
        delta.write_text(json.dumps({"kind": "mystery"}))
        code, captured = _invoke(
            capsys, "rebalance", "--config", str(config), "--delta", str(delta)
        )
        assert code == 2
        assert "Unknown delta kind" in captured.err

    def test_unknown_churn_scenario_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["rebalance", "--grid", "--scenarios", "rapture"])
        assert excinfo.value.code == 2


class TestHuntErrors:
    def test_unknown_objective_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["hunt", "--objective", "nope"])
        assert excinfo.value.code == 2

    @pytest.mark.parametrize(
        "argv",
        [
            ["hunt", "--objective", "planted", "--evaluations", "0"],
            ["hunt", "--objective", "planted", "--max-survivors", "0"],
        ],
        ids=["zero-evaluations", "zero-survivors"],
    )
    def test_invalid_options_exit_cleanly(self, argv, capsys):
        code, captured = _invoke(capsys, *argv)
        assert code == 2
        assert "repro-lb hunt: error:" in captured.err


class TestSweepErrors:
    def test_negative_oracle_stride_exits_cleanly(self, capsys):
        code, captured = _invoke(capsys, "sweep", "--oracle-stride", "-1")
        assert code == 2
        assert "repro-lb sweep: error:" in captured.err
        assert "oracle_stride" in captured.err


class TestLintErrors:
    def test_missing_path_exits_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "no-such-tree"
        code, captured = _invoke(capsys, "lint", str(missing))
        assert code == 2
        assert "repro-lb lint: error:" in captured.err
        assert str(missing) in captured.err
        assert "Traceback" not in captured.err

    def test_non_python_file_exits_cleanly(self, tmp_path, capsys):
        notes = tmp_path / "notes.txt"
        notes.write_text("not python")
        code, captured = _invoke(capsys, "lint", str(notes))
        assert code == 2
        assert str(notes) in captured.err

    def test_directory_without_python_exits_cleanly(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        code, captured = _invoke(capsys, "lint", str(empty))
        assert code == 2
        assert str(empty) in captured.err

    def test_syntax_error_names_the_file(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def (:\n")
        code, captured = _invoke(capsys, "lint", str(broken))
        assert code == 2
        assert str(broken) in captured.err
        assert "Traceback" not in captured.err

    def test_unknown_rule_exits_cleanly(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        code, captured = _invoke(capsys, "lint", str(clean), "--rules", "nope")
        assert code == 2
        assert "repro-lb lint: error:" in captured.err
        assert "nope" in captured.err


class TestCampaignErrors:
    def test_unknown_jobs_count_exits_cleanly(self, tmp_path, capsys):
        code, captured = _invoke(
            capsys,
            "campaign",
            "E1",
            "--preset",
            "tiny",
            "--jobs",
            "0",
            "--output",
            str(tmp_path / "camp"),
        )
        assert code == 2
        assert "repro-lb campaign: error:" in captured.err
