"""Tests of repro.model.graph (TaskGraph)."""

import networkx as nx
import pytest

from repro.errors import ModelError
from repro.model.dependence import Dependence
from repro.model.graph import TaskGraph
from repro.model.task import Task


@pytest.fixture()
def diamond() -> TaskGraph:
    graph = TaskGraph(name="diamond")
    graph.create_task("a", period=2, wcet=0.5, memory=1.0)
    graph.create_task("b", period=4, wcet=1.0, memory=2.0)
    graph.create_task("c", period=4, wcet=1.0, memory=2.0)
    graph.create_task("d", period=8, wcet=1.0, memory=3.0)
    graph.connect("a", "b")
    graph.connect("a", "c")
    graph.connect("b", "d")
    graph.connect("c", "d")
    return graph


class TestConstruction:
    def test_len_and_contains(self, diamond):
        assert len(diamond) == 4
        assert "a" in diamond and "z" not in diamond

    def test_duplicate_identical_task_is_idempotent(self, diamond):
        diamond.add_task(Task("a", period=2, wcet=0.5, memory=1.0))
        assert len(diamond) == 4

    def test_duplicate_conflicting_task_rejected(self, diamond):
        with pytest.raises(ModelError):
            diamond.add_task(Task("a", period=4, wcet=0.5))

    def test_dependence_unknown_task_rejected(self, diamond):
        with pytest.raises(ModelError):
            diamond.connect("a", "nope")

    def test_dependence_non_harmonic_rejected(self):
        graph = TaskGraph()
        graph.create_task("x", period=4, wcet=1.0)
        graph.create_task("y", period=6, wcet=1.0)
        with pytest.raises(ModelError):
            graph.connect("x", "y")

    def test_duplicate_dependence_is_idempotent(self, diamond):
        before = len(diamond.dependences)
        diamond.connect("a", "b")
        assert len(diamond.dependences) == before

    def test_add_dependence_from_tuple(self, diamond):
        dep = diamond.add_dependence(("b", "c"))
        assert isinstance(dep, Dependence)

    def test_unknown_task_lookup(self, diamond):
        with pytest.raises(ModelError):
            diamond.task("zz")

    def test_unknown_dependence_lookup(self, diamond):
        with pytest.raises(ModelError):
            diamond.dependence("a", "d")


class TestStructure:
    def test_successors_predecessors(self, diamond):
        assert diamond.successors("a") == ("b", "c")
        assert diamond.predecessors("d") == ("b", "c")

    def test_sources_sinks(self, diamond):
        assert diamond.sources() == ("a",)
        assert diamond.sinks() == ("d",)

    def test_topological_order_is_valid(self, diamond):
        order = diamond.topological_order()
        position = {name: i for i, name in enumerate(order)}
        for dep in diamond.dependences:
            assert position[dep.producer] < position[dep.consumer]

    def test_cycle_detection(self):
        graph = TaskGraph()
        graph.create_task("a", period=2, wcet=0.5)
        graph.create_task("b", period=2, wcet=0.5)
        graph.connect("a", "b")
        graph.connect("b", "a")
        with pytest.raises(ModelError):
            graph.topological_order()
        assert not graph.is_acyclic()

    def test_ancestors_descendants(self, diamond):
        assert diamond.ancestors("d") == {"a", "b", "c"}
        assert diamond.descendants("a") == {"b", "c", "d"}

    def test_connected_components(self, diamond):
        diamond.create_task("lonely", period=8, wcet=1.0)
        components = diamond.connected_components()
        assert frozenset({"lonely"}) in components
        assert len(components) == 2

    def test_validate_ok(self, diamond):
        diamond.validate()

    def test_validate_empty_graph(self):
        with pytest.raises(ModelError):
            TaskGraph().validate()


class TestGlobalProperties:
    def test_hyper_period(self, diamond):
        assert diamond.hyper_period == 8

    def test_total_instances(self, diamond):
        # a: 4, b: 2, c: 2, d: 1
        assert diamond.total_instances() == 9

    def test_total_memory_per_hyper_period(self, diamond):
        assert diamond.total_memory_per_hyper_period() == pytest.approx(4 * 1 + 2 * 2 + 2 * 2 + 3)

    def test_distinct_periods(self, diamond):
        assert diamond.distinct_periods() == (2, 4, 8)

    def test_total_utilization(self, diamond):
        assert diamond.total_utilization == pytest.approx(0.5 / 2 + 1 / 4 + 1 / 4 + 1 / 8)

    def test_paper_graph_properties(self, paper_graph):
        assert paper_graph.hyper_period == 12
        assert paper_graph.total_instances() == 10
        assert paper_graph.total_memory_per_hyper_period() == pytest.approx(24.0)


class TestExport:
    def test_to_networkx(self, diamond):
        exported = diamond.to_networkx()
        assert isinstance(exported, nx.DiGraph)
        assert set(exported.nodes) == {"a", "b", "c", "d"}
        assert exported.nodes["a"]["period"] == 2
        assert exported.has_edge("a", "b")

    def test_copy_is_independent(self, diamond):
        clone = diamond.copy()
        clone.create_task("extra", period=8, wcet=1.0)
        assert "extra" not in diamond
