"""Tests of the simulation-conformance oracle (repro.conformance).

The oracle's whole value is that it *fails* when the schedule and its
discrete-event replay disagree, so half of this module injects deliberately
corrupted schedules — shifted start times, dropped or forged communication
records — and asserts that the oracle localises the first divergence and
that the ``repro-lb conform`` CLI exits non-zero on it.
"""

from __future__ import annotations

import json

import pytest

from repro import cli, jsonio
from repro.api import PipelineConfig, Pipeline, VerifyStage
from repro.conformance import (
    CONFORMANCE_SCHEMA,
    ConformanceOptions,
    ConformanceReport,
    check_conformance,
)
from repro.core import balance_schedule
from repro.errors import ConfigurationError
from repro.scheduling.schedule import CommOperation


# ---------------------------------------------------------------------------
# Corruption helpers
# ---------------------------------------------------------------------------
def shift_instance(schedule, task, index, processor, start):
    """Corrupted copy of ``schedule`` with one instance moved in time/space."""
    return schedule.moved({(task, index): (processor, start)})


def drop_communication(schedule, position=0):
    """Corrupted copy of ``schedule`` with one CommOperation silently removed."""
    operations = list(schedule.communications)
    assert operations, "schedule carries no communications to drop"
    del operations[position]
    return schedule.with_instances(schedule.instances, operations)


# ---------------------------------------------------------------------------
# Conforming schedules
# ---------------------------------------------------------------------------
class TestConformingSchedules:
    def test_paper_initial_schedule_conforms(self, paper_schedule):
        report = check_conformance(paper_schedule, label="paper")
        assert report.conforms
        assert report.consistent
        assert report.analytical_feasible
        assert report.simulation_clean
        assert report.first_divergence is None
        assert report.divergences == 0
        assert {check.status for check in report.checks} == {"pass"}

    def test_paper_balanced_schedule_conforms(self, paper_schedule):
        balanced = balance_schedule(paper_schedule).balanced_schedule
        report = check_conformance(balanced)
        assert report.conforms and report.consistent

    def test_small_schedule_conforms(self, small_schedule):
        report = check_conformance(small_schedule)
        assert report.conforms

    def test_single_hyper_period(self, paper_schedule):
        report = check_conformance(paper_schedule, ConformanceOptions(hyper_periods=1))
        assert report.conforms
        assert report.hyper_periods == 1

    def test_report_is_deterministic(self, paper_schedule):
        first = check_conformance(paper_schedule, label="pin").to_dict()
        second = check_conformance(paper_schedule, label="pin").to_dict()
        assert first == second

    def test_every_check_present_and_counted(self, paper_schedule):
        report = check_conformance(paper_schedule)
        names = [check.name for check in report.checks]
        assert names == [
            "verdict_agreement",
            "clean_replay",
            "instance_coverage",
            "start_times",
            "busy_intervals",
            "steady_occupancy",
            "communications",
            "dependence_order",
            "memory",
        ]
        # 10 instances x 2 hyper-periods compared everywhere relevant.
        assert report.check("start_times").compared == 20
        assert report.check("communications").compared > 0

    def test_invalid_options_rejected(self, paper_schedule):
        with pytest.raises(ConfigurationError):
            check_conformance(paper_schedule, ConformanceOptions(hyper_periods=0))
        with pytest.raises(ConfigurationError):
            check_conformance(paper_schedule, ConformanceOptions(tolerance=-1.0))
        with pytest.raises(ConfigurationError):
            check_conformance(paper_schedule, ConformanceOptions(max_mismatches=0))


# ---------------------------------------------------------------------------
# Divergence reporting
# ---------------------------------------------------------------------------
class TestDivergenceReporting:
    def test_shifted_start_localises_first_divergence(self, paper_schedule):
        # d#0 is pulled to t=2, long before its input data can arrive: the
        # replay must start it late and the oracle must point at d#0.
        broken = shift_instance(paper_schedule, "d", 0, "P3", 2.0)
        report = check_conformance(broken, label="shifted")
        assert not report.conforms
        assert not report.analytical_feasible
        assert not report.simulation_clean
        # Both models agree the schedule is broken — no simulator/model
        # contradiction, only a non-conforming schedule.
        assert report.consistent
        first = report.first_divergence
        assert first is not None
        assert first["time"] == pytest.approx(2.0)
        assert "d#0" in first["where"]
        assert report.check("start_times").failed
        assert report.check("clean_replay").failed
        assert report.check("memory").status == "skipped"

    def test_dropped_communication_detected(self, paper_schedule):
        # The schedule is still analytically feasible (the checker recomputes
        # arrivals from the placement), but its communication *record* lies:
        # the replay carries a transfer the model does not declare.
        broken = drop_communication(paper_schedule, position=0)
        report = check_conformance(broken, label="dropped-comm")
        assert report.analytical_feasible
        assert not report.conforms
        # A feasible schedule that does not conform IS a model contradiction.
        assert not report.consistent
        comm = report.check("communications")
        assert comm.failed
        assert any("absent from the model" in m["detail"] for m in comm.mismatches)
        assert report.first_divergence is not None
        assert report.first_divergence["check"] == "communications"

    def test_forged_communication_detected(self, paper_schedule):
        operations = list(paper_schedule.communications)
        op = operations[0]
        forged = CommOperation(
            producer=op.producer,
            producer_index=op.producer_index,
            consumer=op.consumer,
            consumer_index=op.consumer_index,
            source=op.source,
            target=op.target,
            medium=op.medium,
            start=op.start + 1.5,
            duration=op.duration,
            data_size=op.data_size,
        )
        broken = paper_schedule.with_instances(
            paper_schedule.instances, operations[1:] + [forged]
        )
        report = check_conformance(broken)
        comm = report.check("communications")
        assert comm.failed
        assert any("modelled [" in m["detail"] for m in comm.mismatches)

    def test_overlap_corruption_is_consistent_divergence(self, paper_schedule):
        # a#1 lands on P1 at t=0 on top of a#0: analytically infeasible
        # (overlap), and the replay must diverge — the two agree.
        broken = shift_instance(paper_schedule, "a", 1, "P1", 0.0)
        report = check_conformance(broken)
        assert not report.analytical_feasible
        assert not report.conforms
        assert not report.simulation_clean
        assert report.consistent

    def test_mismatch_truncation_keeps_global_first(self, paper_schedule):
        broken = shift_instance(paper_schedule, "d", 0, "P3", 2.0)
        report = check_conformance(broken, ConformanceOptions(max_mismatches=1))
        start_times = report.check("start_times")
        assert start_times.mismatch_count >= 2
        assert len(start_times.mismatches) == 1
        assert report.first_divergence["time"] == pytest.approx(2.0)

    def test_divergences_counts_all_mismatches(self, paper_schedule):
        broken = shift_instance(paper_schedule, "d", 0, "P3", 2.0)
        full = check_conformance(broken)
        truncated = check_conformance(broken, ConformanceOptions(max_mismatches=1))
        assert truncated.divergences == full.divergences > 0


# ---------------------------------------------------------------------------
# Report artifact
# ---------------------------------------------------------------------------
class TestReportArtifact:
    def test_round_trip_through_strict_json(self, paper_schedule):
        broken = shift_instance(paper_schedule, "d", 0, "P3", 2.0)
        report = check_conformance(broken, label="roundtrip")
        payload = json.loads(jsonio.dumps(report.to_dict()))
        rebuilt = ConformanceReport.from_dict(payload)
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.conforms == report.conforms
        assert rebuilt.consistent == report.consistent

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ConformanceReport.from_dict({"schema": "repro-conformance/999"})

    def test_schema_tag(self, paper_schedule):
        report = check_conformance(paper_schedule)
        assert report.to_dict()["schema"] == CONFORMANCE_SCHEMA == "repro-conformance/1"

    def test_unknown_check_name_rejected(self, paper_schedule):
        report = check_conformance(paper_schedule)
        with pytest.raises(ConfigurationError):
            report.check("no_such_check")

    def test_render_mentions_first_divergence(self, paper_schedule):
        broken = shift_instance(paper_schedule, "d", 0, "P3", 2.0)
        rendered = check_conformance(broken).render()
        assert "first divergence" in rendered
        assert "d#0" in rendered


# ---------------------------------------------------------------------------
# Pipeline + sweep integration
# ---------------------------------------------------------------------------
class TestPipelineIntegration:
    def test_verify_stage_round_trip(self):
        stage = VerifyStage(conformance=True, conformance_hyper_periods=3)
        assert VerifyStage.from_dict(stage.to_dict()) == stage

    def test_verify_stage_rejects_bad_hyper_periods(self):
        with pytest.raises(ConfigurationError):
            VerifyStage(conformance_hyper_periods=0)

    def test_pipeline_surfaces_conformance_report(self):
        config = PipelineConfig.paper_example().with_conformance()
        result = Pipeline(config).run()
        assert result.conformance is not None
        assert result.conformance["schema"] == CONFORMANCE_SCHEMA
        assert result.conformance["conforms"] is True
        assert "conformance" in result.timings
        # and it survives the repro-run/1 round trip
        rebuilt = type(result).from_dict(json.loads(jsonio.dumps(result.to_dict())))
        assert rebuilt.conformance == result.conformance

    def test_pipeline_without_flag_has_no_report(self):
        result = Pipeline(PipelineConfig.paper_example()).run()
        assert result.conformance is None
        assert "conformance" not in result.to_dict()

    def test_oracle_reuses_the_balancer_feasibility_report(self, paper_schedule):
        """Every balancer already computed a check_memory=False report; the
        oracle accepts it instead of re-running the checker."""
        from repro.api.balancers import balance

        outcome = balance(paper_schedule, "paper")
        assert outcome.feasibility_report is not None
        assert outcome.feasibility_report.is_feasible == outcome.feasible
        reused = check_conformance(
            outcome.schedule, feasibility=outcome.feasibility_report
        )
        fresh = check_conformance(outcome.schedule)
        assert reused.to_dict() == fresh.to_dict()

    def test_with_conformance_preserves_other_stages(self):
        config = PipelineConfig.paper_example()
        forced = config.with_conformance(hyper_periods=4)
        assert forced.verify.conformance
        assert forced.verify.conformance_hyper_periods == 4
        assert forced.balance == config.balance
        assert forced.workload == config.workload
        assert not config.verify.conformance  # original untouched


class TestSweepIntegration:
    def test_plan_sweep_conformance_stride(self):
        from repro.scenarios.sweep import plan_sweep

        cells = plan_sweep("tiny", ("layered_baseline",), ("paper", "no_balancing"))
        assert not any(cell.conformance for cell in cells)
        cells = plan_sweep(
            "tiny",
            ("layered_baseline",),
            ("paper", "no_balancing"),
            conformance_stride=2,
        )
        flags = [cell.conformance for cell in cells]
        assert flags == [index % 2 == 0 for index in range(len(cells))]

    def test_negative_stride_rejected(self):
        from repro.scenarios.sweep import plan_sweep

        with pytest.raises(ConfigurationError):
            plan_sweep("tiny", conformance_stride=-1)

    def test_sweep_slice_runs_conformance_cleanly(self):
        from repro.scenarios.sweep import run_sweep

        artifact = run_sweep(
            "tiny",
            ("layered_baseline",),
            ("paper", "no_balancing"),
            oracle_stride=0,
            conformance_stride=1,
        )
        assert artifact.ok
        checked = [cell for cell in artifact.cells if cell["conformance"]]
        assert checked
        for cell in checked:
            assert cell.get("conformance") or cell["status"] != "ok"

    def test_inconsistent_report_becomes_finding(self, paper_schedule, monkeypatch):
        """A simulator/model contradiction must surface as a 'conformance'
        finding carrying the first divergence."""
        from repro.scenarios import sweep as sweep_module
        from repro.scenarios.sweep import SweepCell, execute_cell

        original = Pipeline.run

        def corrupting_run(self):
            result = original(self)
            if result.conformance is not None:
                broken = drop_communication(paper_schedule)
                result.conformance = check_conformance(broken).to_dict()
            return result

        monkeypatch.setattr(sweep_module.Pipeline, "run", corrupting_run)
        record = execute_cell(
            SweepCell("layered_baseline", 0, "paper", "tiny", conformance=True)
        )
        findings = [f for f in record["findings"] if f["invariant"] == "conformance"]
        assert findings
        assert "first divergence" in findings[0]["detail"]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestConformCli:
    def test_paper_mode_exits_zero(self, capsys):
        assert cli.main(["conform", "--paper"]) == 0
        out = capsys.readouterr().out
        assert "CONFORMS" in out

    def test_paper_mode_json(self, capsys):
        assert cli.main(["conform", "--paper", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == CONFORMANCE_SCHEMA
        assert payload["conforms"] is True

    def test_config_mode(self, tmp_path, capsys):
        config = PipelineConfig.paper_example()
        path = tmp_path / "pipeline.json"
        path.write_text(json.dumps(config.to_dict()))
        assert cli.main(["conform", "--config", str(path)]) == 0
        assert "CONFORMS" in capsys.readouterr().out

    def test_config_and_paper_mutually_exclusive(self, capsys):
        assert cli.main(["conform", "--paper", "--config", "x.json"]) == 2

    def test_missing_config_file(self, capsys):
        assert cli.main(["conform", "--config", "/nonexistent/nope.json"]) == 2

    @staticmethod
    def _corrupt_balance_outcome(monkeypatch, corrupt):
        """Make every pipeline balance stage hand a corrupted schedule to the
        oracle (the balancers themselves would repair schedule-level
        corruption, so the injection happens on their outcome)."""
        import repro.api.pipeline as pipeline_module

        original = pipeline_module.balance

        def corrupting_balance(initial, params):
            outcome = original(initial, params)
            outcome.schedule = corrupt(outcome.schedule)
            return outcome

        monkeypatch.setattr(pipeline_module, "balance", corrupting_balance)

    def test_corrupted_schedule_fails_via_cli(self, monkeypatch, capsys):
        """Satellite: a corrupted schedule must make the CLI exit non-zero
        with the first divergence localised in the rendered report."""
        self._corrupt_balance_outcome(
            monkeypatch, lambda schedule: shift_instance(schedule, "d", 0, "P3", 2.0)
        )
        code = cli.main(["conform", "--paper"])
        captured = capsys.readouterr()
        assert code == 1
        assert "first divergence" in captured.out
        assert "d#0" in captured.out
        assert "divergence(s)" in captured.err

    def test_dropped_communication_fails_via_cli(self, monkeypatch, capsys):
        self._corrupt_balance_outcome(monkeypatch, drop_communication)
        code = cli.main(["conform", "--paper"])
        captured = capsys.readouterr()
        assert code == 1
        assert "absent from the model" in captured.out

    def test_grid_mode_slice(self, capsys):
        code = cli.main(
            [
                "conform",
                "--preset",
                "tiny",
                "--scenarios",
                "zero_communication",
                "--balancers",
                "paper",
                "no_balancing",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "conformance replay(s)" in out

    def test_grid_mode_writes_artifact(self, tmp_path, capsys):
        target = tmp_path / "conform.json"
        code = cli.main(
            [
                "conform",
                "--scenarios",
                "single_processor",
                "--balancers",
                "no_balancing",
                "--output",
                str(target),
            ]
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["schema"] == "repro-sweep/1"
        assert all(cell["conformance"] for cell in payload["cells"])

    def test_grid_mode_threads_hyper_periods_into_cell_configs(self):
        """--hyper-periods must reach every grid cell's verify stage, not be
        silently dropped in grid mode."""
        from repro.scenarios.sweep import _cell_config, plan_sweep

        cells = plan_sweep(
            "tiny",
            ("single_processor",),
            ("no_balancing",),
            conformance_stride=1,
            conformance_hyper_periods=3,
        )
        assert all(cell.conformance_hyper_periods == 3 for cell in cells)
        config = _cell_config(cells[0])
        assert config.verify.conformance
        assert config.verify.conformance_hyper_periods == 3

    def test_grid_hyper_periods_reach_the_report(self):
        # End-to-end: the report inside a cell run carries the requested depth.
        from repro.scenarios.sweep import SweepCell, _cell_config, execute_cell

        cell = SweepCell(
            "single_processor", 0, "no_balancing", "tiny",
            conformance=True, conformance_hyper_periods=3,
        )
        result = Pipeline(_cell_config(cell)).run()
        assert result.conformance["hyper_periods"] == 3
        record = execute_cell(cell)
        assert record["status"] == "ok"

    def test_grid_replay_count_excludes_unreplayed_cells(self, monkeypatch, capsys):
        """Unschedulable cells keep the boolean request flag and must not be
        counted as conformance replays in the grid summary."""
        from repro.scenarios import sweep as sweep_module

        original = sweep_module.execute_cell

        def mostly_unschedulable(cell):
            record = original(cell)
            if cell.index > 0:
                record["status"] = "unschedulable"
                record["conformance"] = cell.conformance
                record["findings"] = []
            return record

        monkeypatch.setattr(sweep_module, "execute_cell", mostly_unschedulable)
        code = cli.main(
            [
                "conform",
                "--scenarios",
                "single_processor",
                "--balancers",
                "no_balancing",
                "--jobs",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 conformance replay(s)" in out

    def test_single_run_hyper_periods_forwarded(self, capsys):
        assert cli.main(["conform", "--paper", "--hyper-periods", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["hyper_periods"] == 3

    def test_sweep_conformance_stride_flag(self, capsys):
        code = cli.main(
            [
                "sweep",
                "--scenarios",
                "single_processor",
                "--balancers",
                "no_balancing",
                "--oracle-stride",
                "0",
                "--conformance-stride",
                "1",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(cell["conformance"] for cell in payload["cells"])
