"""Tests of the parallel campaign runner and its CLI subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments.campaign import (
    MANIFEST_SCHEMA,
    CampaignRun,
    execute_run,
    plan_campaign,
    run_campaign,
)


class TestPlanning:
    def test_seed_sweeps_fan_out(self):
        runs = plan_campaign(["E3"], "quick")
        # ComplexityConfig.quick() carries two seeds -> two runs.
        assert [run.seeds for run in runs] == [(1,), (2,)]
        assert all(run.experiment == "E3" for run in runs)
        assert len({run.run_id for run in runs}) == len(runs)

    def test_seedless_experiments_stay_single_runs(self):
        runs = plan_campaign(["E1", "E2"], "tiny")
        assert [(run.experiment, run.seeds) for run in runs] == [
            ("E1", None),
            ("E2", None),
        ]

    def test_split_can_be_disabled(self):
        runs = plan_campaign(["E3"], "quick", split_seeds=False)
        assert len(runs) == 1
        assert runs[0].seeds is None

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_campaign(["E9"], "quick")

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_campaign(["E3"], "huge")


class TestExecution:
    def test_execute_run_produces_manifest(self):
        manifest = execute_run(CampaignRun("E2-tiny", "E2", "tiny", None))
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["status"] == "ok"
        assert manifest["passed"] is True
        assert manifest["table"].strip()
        json.dumps(manifest)  # must be JSON-serialisable as written

    def test_failed_run_is_contained(self):
        # A bogus preset never reaches the pool: execute_run reports it.
        manifest = execute_run(CampaignRun("bad", "E3", "huge", None))
        assert manifest["status"] == "failed"
        assert "ConfigurationError" in manifest["error"]

    def test_campaign_writes_manifests_and_summary(self, tmp_path):
        summary = run_campaign(
            ["E2", "E3"], "tiny", output_dir=tmp_path / "camp", jobs=1
        )
        assert summary.ok
        assert len(summary.records) == 2  # E2 single + E3 tiny single seed
        for record in summary.records:
            manifest = json.loads(open(record["manifest"]).read())
            assert manifest["schema"] == MANIFEST_SCHEMA
            assert manifest["status"] == "ok"
        written = json.loads(summary.summary_path.read_text())
        assert written["ok"] is True
        assert written["preset"] == "tiny"

    def test_campaign_resume_skips_completed_runs(self, tmp_path):
        out = tmp_path / "camp"
        first = run_campaign(["E2"], "tiny", output_dir=out, jobs=1)
        assert first.records[0]["status"] == "ok"
        second = run_campaign(["E2"], "tiny", output_dir=out, jobs=1, resume=True)
        assert second.records[0]["status"] == "cached"

    def test_campaign_resume_retries_failed_verdicts(self, tmp_path):
        # A manifest whose experiment completed but FAILED (passed False) is
        # not a successful outcome: resume must re-execute it.
        out = tmp_path / "camp"
        first = run_campaign(["E2"], "tiny", output_dir=out, jobs=1)
        manifest_path = out / "runs" / "E2-tiny.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["passed"] = False
        manifest_path.write_text(json.dumps(manifest))
        second = run_campaign(["E2"], "tiny", output_dir=out, jobs=1, resume=True)
        assert second.records[0]["status"] == "ok"
        assert second.records[0]["passed"] is True
        assert first.ok and second.ok

    def test_campaign_resume_survives_corrupted_manifest(self, tmp_path):
        # A worker killed mid-write used to leave a truncated manifest that
        # broke resume; manifests are now written atomically, and a corrupted
        # one left by older builds (or a hard crash) simply re-executes.
        out = tmp_path / "camp"
        run_campaign(["E2"], "tiny", output_dir=out, jobs=1)
        manifest_path = out / "runs" / "E2-tiny.json"
        full = manifest_path.read_text()
        manifest_path.write_text(full[: len(full) // 2])  # truncated mid-object
        second = run_campaign(["E2"], "tiny", output_dir=out, jobs=1, resume=True)
        assert second.records[0]["status"] == "ok"
        assert second.ok
        # The re-executed run rewrote a complete, valid manifest.
        assert json.loads(manifest_path.read_text())["status"] == "ok"

    def test_manifests_are_strict_json_with_no_temp_litter(self, tmp_path):
        out = tmp_path / "camp"
        run_campaign(["E2"], "tiny", output_dir=out, jobs=1)
        files = sorted(p.name for p in (out / "runs").iterdir())
        assert files == ["E2-tiny.json"]
        assert not any(name.endswith(".tmp") for name in files)
        for path in [out / "runs" / "E2-tiny.json", out / "campaign.json"]:
            json.loads(path.read_text(), parse_constant=pytest.fail)

    def test_pipeline_manifest_run_result_is_strict_json(self, tmp_path):
        # The config echo of every pipeline run used to carry
        # memory_capacity=Infinity (a non-standard token); the manifest must
        # now parse under a strict reader and round-trip the RunResult.
        from repro.api import PipelineConfig, RunResult
        from repro.experiments.campaign import run_pipeline_campaign
        from repro.workloads.spec import WorkloadSpec

        config = PipelineConfig.synthetic(WorkloadSpec(task_count=6, label="strict"))
        summary = run_pipeline_campaign(
            [config], output_dir=tmp_path / "camp", jobs=1
        )
        assert summary.ok
        manifest = json.loads(
            open(summary.records[0]["manifest"]).read(), parse_constant=pytest.fail
        )
        rebuilt = RunResult.from_dict(manifest["run_result"])
        assert PipelineConfig.from_dict(rebuilt.config) == config

    def test_invalid_jobs_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="jobs"):
            run_campaign(["E2"], "tiny", output_dir=tmp_path, jobs=0)

    def test_campaign_on_process_pool(self, tmp_path):
        summary = run_campaign(
            ["E3"], "tiny", output_dir=tmp_path / "pool", jobs=2
        )
        assert summary.ok
        assert [record["status"] for record in summary.records] == ["ok"]


class TestCli:
    def test_campaign_subcommand(self, tmp_path, capsys):
        rc = main(
            [
                "campaign",
                "E2",
                "--preset",
                "tiny",
                "--jobs",
                "1",
                "--output",
                str(tmp_path / "cli-camp"),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "campaign:" in out
        assert (tmp_path / "cli-camp" / "campaign.json").exists()

    def test_campaign_resume_via_cli(self, tmp_path, capsys):
        target = str(tmp_path / "cli-resume")
        assert main(["campaign", "E2", "--preset", "tiny", "--jobs", "1", "--output", target]) == 0
        assert (
            main(
                [
                    "campaign",
                    "E2",
                    "--preset",
                    "tiny",
                    "--jobs",
                    "1",
                    "--output",
                    target,
                    "--resume",
                ]
            )
            == 0
        )
        assert "cached" in capsys.readouterr().out
