"""The invariant linter: red fixtures per rule, the clean-tree gate, pragmas,
artifact round-trips and the CLI verb.

Each red fixture is the smallest module that violates exactly one rule; the
test pins the rule id, file and line so a checker that drifts (fires on the
wrong node, or stops firing) fails loudly.  The clean-tree gate is the
self-application contract: ``src/`` must stay at zero findings.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ArtifactError, ConfigurationError
from repro.lint import (
    LintArtifact,
    LintFinding,
    available_rules,
    get_rule,
    lint_paths,
    register_rule,
    rule_info,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"

EXPECTED_RULES = (
    "atomic-write",
    "epsilon-literal",
    "manifest-shell",
    "raw-json",
    "registry-complete",
    "schema-literal",
    "seeded-random",
    "wall-clock",
)

#: rule -> (fixture source, 1-based line of the expected finding).
RED_FIXTURES: dict[str, tuple[str, int]] = {
    "raw-json": ('import json\npayload = json.dumps({"a": 1})\n', 2),
    "atomic-write": (
        'from pathlib import Path\nPath("out.json").write_text("{}")\n',
        2,
    ),
    "epsilon-literal": ("TOLERANCE = 1e-9\n", 1),
    "seeded-random": ("import random\nvalue = random.random()\n", 2),
    "schema-literal": ('TAG = "repro-bench/1"\n', 1),
    "manifest-shell": ("def execute_thing(payload):\n    return payload\n", 1),
    "wall-clock": ("import time\nstamp = time.time()\n", 2),
    "registry-complete": (
        "def register_thing(spec):\n"
        "    pass\n"
        "\n"
        'register_thing("a")\n'
        "\n"
        "\n"
        "def orphan_strategy():\n"
        "    pass\n",
        7,
    ),
}


def _lint_source(tmp_path: Path, source: str, *, rules=None) -> LintArtifact:
    target = tmp_path / "fixture.py"
    target.write_text(source)
    return lint_paths([str(target)], rules=rules)


class TestRegistry:
    def test_all_rules_registered(self):
        assert available_rules() == EXPECTED_RULES

    def test_rule_info_carries_title_and_description(self):
        for name in available_rules():
            rule = rule_info(name)
            assert rule.name == name
            assert rule.title
            assert rule.description

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigurationError, match="nope"):
            get_rule("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="raw-json"):
            register_rule("raw-json", "dup", "dup")(lambda source: ())


class TestRedFixtures:
    @pytest.mark.parametrize("rule", sorted(RED_FIXTURES))
    def test_rule_fires_at_the_expected_line(self, rule, tmp_path):
        source, line = RED_FIXTURES[rule]
        artifact = _lint_source(tmp_path, source, rules=[rule])
        assert not artifact.ok
        assert [(f.rule, f.line) for f in artifact.findings] == [(rule, line)]
        finding = artifact.findings[0]
        assert finding.path.endswith("fixture.py")
        assert finding.message

    @pytest.mark.parametrize("rule", sorted(RED_FIXTURES))
    def test_all_rules_together_still_catch_it(self, rule, tmp_path):
        source, line = RED_FIXTURES[rule]
        artifact = _lint_source(tmp_path, source)
        assert (rule, line) in [(f.rule, f.line) for f in artifact.findings]

    def test_seeded_random_requires_derive_seed(self, tmp_path):
        artifact = _lint_source(
            tmp_path, "import random\nrng = random.Random(7)\n", rules=["seeded-random"]
        )
        assert [f.rule for f in artifact.findings] == ["seeded-random"]
        assert "derive" in artifact.findings[0].message

    def test_seeded_random_accepts_derived_seeds(self, tmp_path):
        source = (
            "import random\n"
            "from repro.workloads.seeding import derive_seed\n"
            "rng = random.Random(derive_seed(7, 0))\n"
        )
        assert _lint_source(tmp_path, source, rules=["seeded-random"]).ok

    def test_schema_literal_distinguishes_unknown_tags(self, tmp_path):
        artifact = _lint_source(
            tmp_path, 'TAG = "repro-doesnotexist/3"\n', rules=["schema-literal"]
        )
        assert [f.rule for f in artifact.findings] == ["schema-literal"]
        assert "not in the central" in artifact.findings[0].message

    def test_schema_tags_in_docstrings_are_prose(self, tmp_path):
        artifact = _lint_source(
            tmp_path, '"""Writes repro-bench/1 artifacts."""\n', rules=["schema-literal"]
        )
        assert artifact.ok

    def test_manifest_shell_accepts_wrapped_workers(self, tmp_path):
        source = (
            "def execute_thing(payload):\n"
            "    try:\n"
            "        return {'status': 'ok'}\n"
            "    except Exception:\n"
            "        return {'status': 'failed'}\n"
        )
        assert _lint_source(tmp_path, source, rules=["manifest-shell"]).ok

    def test_raw_json_allows_loads(self, tmp_path):
        assert _lint_source(
            tmp_path, 'import json\ndata = json.loads("{}")\n', rules=["raw-json"]
        ).ok


class TestPragmas:
    def test_disable_pragma_suppresses_and_is_counted(self, tmp_path):
        source = "import time\nstamp = time.time()  # repro-lint: disable=wall-clock\n"
        artifact = _lint_source(tmp_path, source, rules=["wall-clock"])
        assert artifact.ok
        assert artifact.suppressed == {"wall-clock": 1}
        assert artifact.counts["suppressed"] == 1

    def test_pragma_is_per_rule(self, tmp_path):
        source = "import time\nstamp = time.time()  # repro-lint: disable=raw-json\n"
        artifact = _lint_source(tmp_path, source, rules=["wall-clock"])
        assert not artifact.ok

    def test_pragma_accepts_comma_separated_rules(self, tmp_path):
        source = (
            "import time\n"
            "stamp = time.time()  # repro-lint: disable=raw-json, wall-clock\n"
        )
        assert _lint_source(tmp_path, source, rules=["wall-clock"]).ok


class TestCleanTree:
    def test_src_is_lint_clean(self):
        artifact = lint_paths([str(SRC)])
        assert artifact.findings == (), "\n" + artifact.render()
        assert artifact.files > 100
        assert artifact.rules == EXPECTED_RULES


class TestArtifact:
    def test_round_trip_through_disk(self, tmp_path):
        artifact = _lint_source(tmp_path, "TOLERANCE = 1e-9\n")
        target = artifact.save(tmp_path / "lint")
        assert target.name.startswith("LINT_")
        loaded = LintArtifact.load(target)
        assert loaded.schema == "repro-lint/1"
        assert loaded.findings == artifact.findings
        assert loaded.counts == artifact.counts

    def test_load_goes_through_the_schema_front_door(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "repro-bench/1"}))
        with pytest.raises(ArtifactError, match="repro-lint"):
            LintArtifact.load(bad)

    def test_fingerprint_is_line_drift_stable(self):
        first = LintFinding(rule="wall-clock", path="a.py", line=3, col=0, message="m")
        moved = LintFinding(rule="wall-clock", path="a.py", line=90, col=4, message="m")
        other = LintFinding(rule="wall-clock", path="b.py", line=3, col=0, message="m")
        assert first.fingerprint == moved.fingerprint
        assert first.fingerprint != other.fingerprint
        assert first.to_dict()["fingerprint"] == first.fingerprint

    def test_dumps_is_strict_sorted_json(self, tmp_path):
        artifact = _lint_source(tmp_path, "TOLERANCE = 1e-9\n")
        payload = json.loads(artifact.dumps())
        assert payload["schema"] == "repro-lint/1"
        assert payload["findings"][0]["rule"] == "epsilon-literal"
        assert payload["counts"]["findings"] == 1


class TestEngineErrors:
    def test_missing_path_rejected(self):
        with pytest.raises(ConfigurationError, match="does-not-exist"):
            lint_paths(["does-not-exist"])

    def test_non_python_file_rejected(self, tmp_path):
        target = tmp_path / "notes.txt"
        target.write_text("hello")
        with pytest.raises(ConfigurationError, match="notes.txt"):
            lint_paths([str(target)])

    def test_directory_without_python_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ConfigurationError, match="empty"):
            lint_paths([str(empty)])

    def test_syntax_error_names_the_file(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def (:\n")
        with pytest.raises(ConfigurationError, match="broken.py"):
            lint_paths([str(bad)])

    def test_no_paths_rejected(self):
        with pytest.raises(ConfigurationError, match="No lint paths"):
            lint_paths([])


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert main(["lint", str(clean)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_findings_exit_one_and_name_the_site(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("TOLERANCE = 1e-9\n")
        assert main(["lint", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "epsilon-literal" in out
        assert "dirty.py:1" in out

    def test_json_emits_the_artifact(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nstamp = time.time()\n")
        assert main(["lint", str(dirty), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-lint/1"
        assert payload["findings"][0]["rule"] == "wall-clock"

    def test_rules_subset_runs_only_those(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("TOLERANCE = 1e-9\nimport time\nstamp = time.time()\n")
        assert main(["lint", str(dirty), "--rules", "wall-clock"]) == 1
        payload_out = capsys.readouterr().out
        assert "wall-clock" in payload_out
        assert "epsilon-literal" not in payload_out

    def test_output_writes_a_loadable_artifact(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("TOLERANCE = 1e-9\n")
        out_dir = tmp_path / "artifacts"
        assert main(["lint", str(dirty), "--output", str(out_dir)]) == 1
        capsys.readouterr()
        files = list(out_dir.glob("LINT_*.json"))
        assert len(files) == 1
        assert LintArtifact.load(files[0]).counts["findings"] == 1

    def test_repo_gate_through_the_cli(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_rules_in_list_catalog(self, capsys):
        assert main(["list", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        section = catalog["lint rules (see 'repro-lb lint')"]
        assert [entry["name"] for entry in section] == list(EXPECTED_RULES)
        schemas = catalog["artifact schemas"]
        assert {"name": "repro-lint/1", "summary": "owned by repro.lint.artifact"} in schemas
