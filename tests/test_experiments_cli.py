"""Tests of the experiment harness (E1-E8) and the command-line interface.

The experiment runners are exercised with reduced configurations so the whole
file stays fast; the full-size campaigns are what the benchmarks run.
"""

import pytest

from repro.cli import build_parser, main
from repro.experiments import (
    ALL_EXPERIMENTS,
    ComparisonConfig,
    ComplexityConfig,
    IdleFractionConfig,
    MultirateConfig,
    Theorem1Config,
    Theorem2Config,
    build_table,
    run_e1_paper_example,
    run_e2_multirate_buffering,
    run_e3_complexity,
    run_e4_theorem1,
    run_e5_theorem2,
    run_e6_baseline_comparison,
    run_e7_ablation,
    run_e8_idle_fraction,
)
from repro.experiments.configs import AblationConfig
from repro.workloads import GraphShape, WorkloadSpec


class TestExperimentE1E2:
    def test_e1_reproduces_the_paper(self):
        result = run_e1_paper_example()
        assert result.passed
        assert result.data["makespan_after"] == 14.0
        assert result.data["memory_after"] == {"P1": 10.0, "P2": 6.0, "P3": 8.0}
        assert "paper" in result.render()

    def test_e2_buffering(self):
        result = run_e2_multirate_buffering(MultirateConfig(period_ratios=(1, 3)))
        assert result.passed
        assert result.data["peaks"][3] == pytest.approx(3.0)


class TestExperimentAnalysis:
    def test_e3_small(self):
        config = ComplexityConfig(task_counts=(20, 40), processor_counts=(2, 3), seeds=(1,))
        result = run_e3_complexity(config)
        assert result.passed
        assert result.data["evaluations_match"]

    def test_e4_small(self):
        config = Theorem1Config(
            processor_counts=(2, 3), seeds=(0, 1), task_count=16,
            shapes=(GraphShape.PIPELINE,),
        )
        result = run_e4_theorem1(config)
        assert result.passed  # the lower bound must always hold

    def test_e5_small(self):
        config = Theorem2Config(processor_counts=(2, 3), block_counts=(5, 8), seeds=(0, 1, 2))
        result = run_e5_theorem2(config)
        assert result.passed

    def test_e6_small(self):
        spec = WorkloadSpec(task_count=16, processor_count=3, utilization=0.3,
                            shape=GraphShape.PIPELINE, label="e6-test")
        result = run_e6_baseline_comparison(ComparisonConfig(spec=spec, seeds=(0, 1)))
        assert result.passed is not False
        assert "initial (no balancing)" in result.table

    def test_e7_small(self):
        spec = WorkloadSpec(task_count=16, processor_count=3, utilization=0.3,
                            shape=GraphShape.PIPELINE, label="e7-test")
        result = run_e7_ablation(AblationConfig(spec=spec, seeds=(0,)))
        assert "ratio (default)" in result.table

    def test_e8_small(self):
        config = IdleFractionConfig(utilizations=(0.2,), seeds=(0, 1), task_count=16)
        result = run_e8_idle_fraction(config)
        assert result.data

    def test_registry_is_complete(self):
        assert set(ALL_EXPERIMENTS) == {f"E{i}" for i in range(1, 9)}

    def test_build_table_formats_floats(self):
        table = build_table(["x"], [[1.23456], ["text"]])
        assert "1.23" in table and "text" in table


class TestCli:
    def test_parser_version(self):
        parser = build_parser()
        assert parser.prog == "repro-lb"

    def test_example_command(self, capsys):
        assert main(["example", "--steps"]) == 0
        output = capsys.readouterr().out
        assert "Balanced schedule" in output
        assert "step 7" in output

    def test_experiment_command(self, capsys):
        assert main(["experiment", "E1"]) == 0
        assert "E1" in capsys.readouterr().out

    def test_random_command(self, capsys):
        code = main([
            "random", "--tasks", "16", "--processors", "3",
            "--shape", "pipeline", "--seed", "3", "--simulate",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "balanced" in output
        assert "simulation" in output

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "E99"])
