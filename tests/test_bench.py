"""Tests of the unified benchmark harness (``repro.bench``).

Covers the three contracts the subsystem makes:

* **registry completeness** — every experiment E1..E8 is registered and the
  ``benchmarks/bench_e*.py`` shells resolve against the registry;
* **artifact schema** — ``repro-bench/1`` round-trips through dict and disk
  and rejects foreign schemas;
* **compare semantics** — pass/warn/fail at the tolerance boundary, the
  min-delta noise floor, verdict regressions, missing/new benchmarks, and
  the CLI exit codes the CI perf gate relies on.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BENCH_PRESETS,
    BENCH_SCHEMA,
    BenchArtifact,
    BenchmarkRecord,
    available_benchmarks,
    bench_script,
    benchmark_info,
    compare,
    environment_fingerprint,
    run_benchmarks,
)
from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.tables import ExperimentResult


# ----------------------------------------------------------------------
# Registry completeness
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_eight_experiments_registered(self) -> None:
        assert available_benchmarks() == ("E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8")

    def test_registry_matches_experiment_registry(self) -> None:
        assert set(available_benchmarks()) == set(ALL_EXPERIMENTS)

    def test_specs_are_complete(self) -> None:
        for name in available_benchmarks():
            spec = benchmark_info(name)
            assert spec.name == name
            assert spec.title
            assert spec.description
            assert callable(spec.runner)
            assert callable(spec.metrics)

    def test_unknown_benchmark_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="Unknown benchmark"):
            benchmark_info("E99")

    def test_bench_script_runs_and_extracts_metrics(self) -> None:
        run, main = bench_script("E2")
        result = run("tiny")
        assert isinstance(result, ExperimentResult)
        metrics = benchmark_info("E2").metrics(result)
        assert metrics and all(isinstance(v, float) for v in metrics.values())

    def test_presets_map_onto_experiment_presets(self) -> None:
        assert BENCH_PRESETS == {"tiny": "tiny", "paper": "quick", "stress": "full"}


# ----------------------------------------------------------------------
# Harness + artifact schema
# ----------------------------------------------------------------------
class TestArtifact:
    @pytest.fixture(scope="class")
    def artifact(self) -> BenchArtifact:
        # Two fast benchmarks keep the suite quick; the full sweep is
        # exercised by the CI perf gate and the smoke tests.
        return run_benchmarks(["E2", "E5"], preset="tiny", warmup=0, repeats=2)

    def test_run_records_every_repeat(self, artifact: BenchArtifact) -> None:
        assert artifact.benchmark_names == ("E2", "E5")
        for record in artifact.records:
            assert len(record.wall_times) == 2
            assert record.best <= record.mean
            assert record.metrics

    def test_dict_round_trip(self, artifact: BenchArtifact) -> None:
        clone = BenchArtifact.from_dict(artifact.to_dict())
        assert clone.to_dict() == artifact.to_dict()
        assert clone.schema == BENCH_SCHEMA

    def test_file_round_trip(self, artifact: BenchArtifact, tmp_path) -> None:
        explicit = artifact.save(tmp_path / "baseline.json")
        assert explicit.name == "baseline.json"
        assert BenchArtifact.load(explicit).to_dict() == artifact.to_dict()

    def test_directory_target_gets_conventional_name(self, artifact, tmp_path) -> None:
        written = artifact.save(tmp_path / "out")
        assert written.name.startswith("BENCH_") and written.suffix == ".json"
        assert BenchArtifact.load(written).to_dict() == artifact.to_dict()

    def test_foreign_schema_rejected(self, artifact: BenchArtifact) -> None:
        data = artifact.to_dict()
        data["schema"] = "repro-bench/999"
        with pytest.raises(ConfigurationError, match="schema"):
            BenchArtifact.from_dict(data)

    def test_unwritable_target_raises_configuration_error(self, artifact, tmp_path) -> None:
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        # A suffix-less target is treated as a directory; an existing regular
        # file there must fail with the library's error type, not an OSError.
        with pytest.raises(ConfigurationError, match="Cannot write"):
            artifact.save(blocker)

    def test_record_without_wall_times_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="wall times"):
            BenchmarkRecord.from_dict({"name": "E1", "wall_times": []})

    def test_environment_fingerprint_keys(self, artifact: BenchArtifact) -> None:
        for env in (artifact.environment, environment_fingerprint()):
            assert {"python", "platform", "machine", "cpu_count", "versions"} <= set(env)
            assert "repro" in env["versions"]

    def test_unknown_preset_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="bench preset"):
            run_benchmarks(["E2"], preset="huge")

    def test_bad_repeat_counts_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="repeats"):
            run_benchmarks(["E2"], preset="tiny", repeats=0)
        with pytest.raises(ConfigurationError, match="warmup"):
            run_benchmarks(["E2"], preset="tiny", warmup=-1)


# ----------------------------------------------------------------------
# Compare semantics
# ----------------------------------------------------------------------
def _artifact(times: dict[str, float], passed: dict[str, bool | None] | None = None):
    passed = passed or {}
    return BenchArtifact.now(
        preset="tiny",
        records=[
            BenchmarkRecord(
                name=name, title=name, wall_times=[value], passed=passed.get(name)
            )
            for name, value in times.items()
        ],
    )


class TestCompare:
    def test_at_the_tolerance_boundary(self) -> None:
        baseline = _artifact({"E3": 1.0})
        # Exactly at tolerance: warn, not fail (fail is strictly greater).
        report = compare(baseline, _artifact({"E3": 2.5}), 2.5, min_delta=0.0)
        assert [e.status for e in report.entries] == ["warn"]
        assert report.ok
        # Just above: fail.
        report = compare(baseline, _artifact({"E3": 2.5000001}), 2.5, min_delta=0.0)
        assert [e.status for e in report.entries] == ["fail"]
        assert not report.ok and report.regressions[0].name == "E3"

    def test_warn_band_and_pass(self) -> None:
        baseline = _artifact({"E3": 1.0})
        # warn threshold = tolerance * warn_fraction = 2.0
        assert compare(baseline, _artifact({"E3": 2.1}), 2.5, min_delta=0.0).entries[0].status == "warn"
        assert compare(baseline, _artifact({"E3": 1.9}), 2.5, min_delta=0.0).entries[0].status == "pass"
        assert compare(baseline, _artifact({"E3": 0.5}), 2.5, min_delta=0.0).entries[0].status == "pass"

    def test_min_delta_noise_floor(self) -> None:
        baseline = _artifact({"E2": 0.001})
        # 10x slower but only +9 ms: suppressed by the default floor...
        report = compare(baseline, _artifact({"E2": 0.010}), 2.5)
        assert report.entries[0].status == "pass"
        assert "noise floor" in report.entries[0].detail
        # ...and failing again once the floor is disabled.
        assert compare(baseline, _artifact({"E2": 0.010}), 2.5, min_delta=0.0).entries[0].status == "fail"

    def test_verdict_regression_beats_the_floor(self) -> None:
        baseline = _artifact({"E1": 0.001}, passed={"E1": True})
        current = _artifact({"E1": 0.001}, passed={"E1": False})
        report = compare(baseline, current, 2.5)
        assert report.entries[0].status == "fail"
        assert "verdict" in report.entries[0].detail

    def test_missing_benchmark_is_a_regression(self) -> None:
        report = compare(_artifact({"E1": 1.0, "E2": 1.0}), _artifact({"E1": 1.0}), 2.5)
        by_name = {entry.name: entry for entry in report.entries}
        assert by_name["E2"].status == "missing"
        assert not report.ok

    def test_new_benchmark_passes(self) -> None:
        report = compare(_artifact({"E1": 1.0}), _artifact({"E1": 1.0, "E9": 1.0}), 2.5)
        by_name = {entry.name: entry for entry in report.entries}
        assert by_name["E9"].status == "new"
        assert report.ok

    def test_preset_mismatch_rejected(self) -> None:
        baseline = _artifact({"E1": 1.0})
        current = _artifact({"E1": 1.0})
        current.preset = "paper"
        with pytest.raises(ConfigurationError, match="Preset mismatch"):
            compare(baseline, current, 2.5)

    def test_bad_parameters_rejected(self) -> None:
        artifact = _artifact({"E1": 1.0})
        with pytest.raises(ConfigurationError, match="tolerance"):
            compare(artifact, artifact, 1.0)
        with pytest.raises(ConfigurationError, match="warn_fraction"):
            compare(artifact, artifact, 2.5, warn_fraction=0.0)
        with pytest.raises(ConfigurationError, match="min_delta"):
            compare(artifact, artifact, 2.5, min_delta=-1.0)

    def test_dict_inputs_and_report_serialisation(self) -> None:
        baseline = _artifact({"E1": 1.0})
        report = compare(baseline.to_dict(), baseline.to_dict(), 2.5)
        data = report.to_dict()
        assert data["ok"] is True and data["tolerance"] == 2.5
        assert "verdict: OK" in report.render()


# ----------------------------------------------------------------------
# CLI (`repro-lb bench ...`)
# ----------------------------------------------------------------------
class TestBenchCli:
    def test_bench_list(self, capsys) -> None:
        assert cli_main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "stress" in out

    def test_bench_run_emits_valid_artifact(self, capsys, tmp_path) -> None:
        target = tmp_path / "artifact.json"
        code = cli_main(
            ["bench", "run", "E2", "E5", "--preset", "tiny", "--warmup", "0",
             "--repeats", "1", "--json", "--output", str(target)]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == BENCH_SCHEMA
        assert [entry["name"] for entry in payload["results"]] == ["E2", "E5"]
        assert BenchArtifact.load(target).benchmark_names == ("E2", "E5")

    def test_bench_compare_exit_codes(self, capsys, tmp_path) -> None:
        baseline = _artifact({"E3": 0.1})
        slow = _artifact({"E3": 1.0})
        base_path = baseline.save(tmp_path / "baseline.json")
        slow_path = slow.save(tmp_path / "slow.json")
        assert cli_main(["bench", "compare", str(base_path), str(base_path)]) == 0
        capsys.readouterr()
        code = cli_main(
            ["bench", "compare", str(base_path), str(slow_path), "--min-delta", "0.0"]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_run_unknown_name_is_an_error(self, capsys) -> None:
        assert cli_main(["bench", "run", "E99", "--repeats", "1", "--warmup", "0"]) == 2
        assert "Unknown benchmark" in capsys.readouterr().err
