"""Cross-cutting property-based tests (hypothesis) on the whole pipeline.

These tests generate random strictly periodic applications end to end and
assert the library's global invariants:

* the initial scheduler only produces feasible schedules (or raises);
* the load balancer never increases the total execution time, never loses an
  instance, and (with the retry ladder) never returns an infeasible schedule;
* the simulator replays feasible schedules without violations and conserves
  buffered samples.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CostPolicy, LoadBalancer, LoadBalancerOptions
from repro.errors import InfeasibleError
from repro.model import Architecture, CommunicationModel, TaskGraph
from repro.scheduling import check_schedule, schedule_application
from repro.scheduling.heuristic import PlacementPolicy, SchedulerOptions
from repro.simulation import SimulationOptions, simulate


@st.composite
def small_applications(draw) -> TaskGraph:
    """Random small multi-rate chains/trees with harmonic periods."""
    base = draw(st.sampled_from([2, 3, 4]))
    levels = [base, base * 2, base * 4]
    task_count = draw(st.integers(min_value=2, max_value=7))
    graph = TaskGraph(name="hypothesis-app")
    names: list[str] = []
    for index in range(task_count):
        period = levels[min(index * len(levels) // task_count, len(levels) - 1)]
        wcet = draw(
            st.floats(min_value=0.1, max_value=period / 2, allow_nan=False, allow_infinity=False)
        )
        memory = draw(st.floats(min_value=0.0, max_value=8.0, allow_nan=False))
        name = f"t{index}"
        graph.create_task(name, period=period, wcet=round(wcet, 2), memory=round(memory, 1))
        names.append(name)
    # Chain/tree edges: each non-first task depends on one earlier task.
    for index in range(1, task_count):
        producer = names[draw(st.integers(min_value=0, max_value=index - 1))]
        graph.connect(producer, names[index])
    return graph


_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


@given(graph=small_applications(), processors=st.integers(2, 3), seed=st.integers(0, 3))
@_settings
def test_pipeline_invariants(graph: TaskGraph, processors: int, seed: int) -> None:
    """Scheduler feasibility, balancer monotonicity, simulator cleanliness."""
    architecture = Architecture.homogeneous(
        processors, comm=CommunicationModel(latency=0.5)
    )
    policy = list(PlacementPolicy)[seed % len(PlacementPolicy)]
    try:
        initial = schedule_application(graph, architecture, SchedulerOptions(policy=policy))
    except InfeasibleError:
        return  # an unschedulable draw is not a failure of the library

    initial_report = check_schedule(initial)
    assert initial_report.is_feasible, initial_report.summary()
    assert len(initial) == graph.total_instances()

    balancer_policy = list(CostPolicy)[seed % len(CostPolicy)]
    result = LoadBalancer(initial, LoadBalancerOptions(policy=balancer_policy)).run()

    # Never worse, never loses instances, always returns a feasible schedule.
    assert result.makespan_after <= result.makespan_before + 1e-9
    assert len(result.balanced_schedule) == len(initial)
    balanced_report = check_schedule(result.balanced_schedule, check_memory=False)
    assert balanced_report.is_feasible, balanced_report.summary()

    # Total memory is conserved: balancing moves memory, it does not create it.
    assert math.isclose(
        sum(result.memory_after.values()), sum(result.memory_before.values()), rel_tol=1e-9
    )

    # The simulator replays the balanced schedule without violations under the
    # paper's analytic communication assumption (no medium contention — with
    # contention a shared bus may legitimately delay transfers, which is one of
    # the fidelity gaps the simulator exists to expose), and frees every
    # buffered sample.
    simulation = simulate(
        result.balanced_schedule,
        SimulationOptions(hyper_periods=2, medium_contention=False),
    )
    assert simulation.is_clean, simulation.trace.summary()
    assert simulation.memory.outstanding() == 0


@given(graph=small_applications())
@_settings
def test_single_processor_balancing_is_identity_in_time(graph: TaskGraph) -> None:
    """On one processor there is nothing to win: the makespan never changes."""
    architecture = Architecture.homogeneous(1)
    try:
        initial = schedule_application(graph, architecture)
    except InfeasibleError:
        return
    result = LoadBalancer(initial).run()
    assert result.makespan_after == result.makespan_before
    assert result.max_memory_after == result.max_memory_before
