"""Tests of repro.baselines (assignment baselines, packing, exact optimum, GA)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    GeneticOptions,
    block_weights,
    ffd_memory_assignment,
    first_fit_decreasing_bins,
    genetic_assignment,
    greedy_load_balance,
    greedy_memory_assignment,
    greedy_min_memory,
    lpt_assignment,
    materialize_assignment,
    memory_only_balance,
    no_balancing,
    optimal_max_memory,
    optimal_min_max_partition,
    pack_min_max,
)
from repro.core.blocks import build_blocks
from repro.errors import AnalysisError, ConfigurationError


class TestNoBalancing:
    def test_identity_assignment(self, paper_schedule):
        result = no_balancing(paper_schedule)
        assert result.max_memory == pytest.approx(16.0)
        assert result.schedule is paper_schedule
        assert "no-balancing" in result.summary()


class TestBlockLevelBaselines:
    def test_lpt_balances_execution(self, paper_schedule):
        result = lpt_assignment(paper_schedule)
        assert result.max_execution <= 4.0  # total execution is 10 over 3 processors

    def test_greedy_memory_assignment_reduces_max_memory(self, paper_schedule):
        result = greedy_memory_assignment(paper_schedule)
        assert result.max_memory <= 16.0
        assert result.max_memory >= 8.0  # cannot beat the ideal split of 24/3

    def test_ffd_memory_assignment(self, paper_schedule):
        result = ffd_memory_assignment(paper_schedule)
        assert result.max_memory <= 16.0

    def test_materialize_assignment_keeps_start_times(self, paper_schedule):
        blocks = build_blocks(paper_schedule)
        assignment = {block.id: "P1" for block in blocks}
        schedule = materialize_assignment(paper_schedule, blocks, assignment)
        assert schedule.memory_by_processor()["P1"] == pytest.approx(24.0)
        for instance in schedule.instances:
            assert instance.start == paper_schedule.instance(*instance.key).start

    def test_materialize_rejects_unknown_processor(self, paper_schedule):
        blocks = build_blocks(paper_schedule)
        assignment = {block.id: "P9" for block in blocks}
        with pytest.raises(ConfigurationError):
            materialize_assignment(paper_schedule, blocks, assignment)

    def test_materialize_rejects_missing_block(self, paper_schedule):
        blocks = build_blocks(paper_schedule)
        with pytest.raises(ConfigurationError):
            materialize_assignment(paper_schedule, blocks, {})

    def test_block_weights(self, paper_schedule):
        weights = block_weights(build_blocks(paper_schedule))
        assert len(weights) == 7
        assert sum(w.memory for w in weights) == pytest.approx(24.0)


class TestSchedulingBaselines:
    def test_load_only_balance_feasible(self, paper_schedule):
        result = greedy_load_balance(paper_schedule)
        assert result.makespan_after <= result.makespan_before

    def test_memory_only_balance_reduces_max_memory(self, paper_schedule):
        result = memory_only_balance(paper_schedule)
        assert result.max_memory_after <= result.max_memory_before


class TestBinPacking:
    def test_ffd_bins_respects_capacity(self):
        bins = first_fit_decreasing_bins([4, 3, 3, 2, 2, 2], capacity=6)
        for bin_items in bins:
            assert sum([4, 3, 3, 2, 2, 2][i] for i in bin_items) <= 6
        assert len(bins) == 3

    def test_ffd_bins_rejects_oversized_item(self):
        with pytest.raises(ConfigurationError):
            first_fit_decreasing_bins([7], capacity=6)

    def test_pack_min_max(self):
        assignment, worst = pack_min_max([5, 4, 3, 2], 2)
        assert worst == pytest.approx(7.0)
        assert set(assignment.values()) == {0, 1}

    def test_pack_min_max_single_bin(self):
        _assignment, worst = pack_min_max([1, 2, 3], 1)
        assert worst == 6.0

    @given(st.lists(st.floats(0.5, 10), min_size=1, max_size=12), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_pack_min_max_is_complete(self, weights, bins):
        assignment, worst = pack_min_max(weights, bins)
        assert len(assignment) == len(weights)
        loads = [0.0] * bins
        for item, target in assignment.items():
            loads[target] += weights[item]
        assert max(loads) == pytest.approx(worst)


class TestBranchAndBound:
    def test_trivial_cases(self):
        assert optimal_max_memory([], 3) == 0.0
        assert optimal_max_memory([5.0], 2) == 5.0

    def test_known_optimum(self):
        # 4+3+3+2 over 2 bins: optimum is 6 (4+2 / 3+3).
        assert optimal_max_memory([4, 3, 3, 2], 2) == pytest.approx(6.0)

    def test_rejects_bad_input(self):
        with pytest.raises(AnalysisError):
            optimal_min_max_partition([1.0], 0)
        with pytest.raises(AnalysisError):
            optimal_min_max_partition([-1.0], 2)

    def test_assignment_is_consistent_with_optimum(self):
        result = optimal_min_max_partition([4, 3, 3, 2, 1], 2)
        loads = [0.0, 0.0]
        for item, target in result.assignment.items():
            loads[target] += [4, 3, 3, 2, 1][item]
        assert max(loads) == pytest.approx(result.optimum)
        assert result.exact

    @given(st.lists(st.integers(1, 9), min_size=1, max_size=9), st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_optimum_bounds(self, weights, bins):
        """The exact optimum is between the trivial lower bounds and the greedy value."""
        result = optimal_min_max_partition(weights, bins)
        lower = max(max(weights), sum(weights) / bins)
        _greedy_assignment, greedy_value = pack_min_max(weights, bins)
        assert result.optimum >= lower - 1e-9
        assert result.optimum <= greedy_value + 1e-9


class TestGreedyMemoryRule:
    def test_order_sensitivity(self):
        """The Theorem-2 rule processes items in order (not sorted), so it can
        end at 7 on [5,1,1,5] where sorted packing would reach the optimum 6."""
        processors = ["P1", "P2"]
        assignment = greedy_min_memory([5, 1, 1, 5], processors)
        loads = {"P1": 0.0, "P2": 0.0}
        for index, weight in enumerate([5, 1, 1, 5]):
            loads[assignment[index]] += weight
        assert max(loads.values()) == pytest.approx(7.0)
        assert max(loads.values()) / 6.0 <= 2 - 1 / 2  # still within Theorem 2's bound


class TestGenetic:
    def test_genetic_improves_on_identity(self, paper_schedule):
        result = genetic_assignment(
            paper_schedule, GeneticOptions(population_size=20, generations=30, seed=1)
        )
        assert result.max_memory <= 16.0
        assert result.info["evaluations"] > 0

    def test_genetic_is_deterministic_for_a_seed(self, paper_schedule):
        options = GeneticOptions(population_size=16, generations=10, seed=7)
        first = genetic_assignment(paper_schedule, options)
        second = genetic_assignment(paper_schedule, options)
        assert first.assignment == second.assignment

    def test_invalid_options_rejected(self):
        with pytest.raises(ConfigurationError):
            GeneticOptions(population_size=1).validate()
        with pytest.raises(ConfigurationError):
            GeneticOptions(mutation_rate=2.0).validate()
        with pytest.raises(ConfigurationError):
            GeneticOptions(memory_weight=1.5).validate()
