"""Property suite pinning the flat-array kernels to the Python engine.

``repro.core.kernels`` re-implements the steady-state hot path on parallel
numpy arrays; every speedup is only admissible because the answers are
*identical* to the per-object Python engine.  This suite pins that claim:

* ``normalize_pieces`` is the one canonical boundary rule — ``split_wrapping``
  delegates to it and the ``overlaps`` fast path can no longer drift from it
  (the inlined clamp used to disagree on sub-epsilon wrap pieces);
* ``OccupancyTimeline.extend`` / ``ArrayTimeline.extend`` equal sequential
  ``add`` (the O(n²)-seeding bugfix);
* ``remove`` matches within EPSILON (the exact-float ulp bugfix);
* ``ArrayTimeline`` mirrors ``OccupancyTimeline`` op-for-op over random
  sequences, ``overlaps_batch`` equals per-object ``overlaps`` (wrap,
  zero-length, full-period, owner exclusion);
* ``clearing_shift_batch`` (dense *and* windowed) equals the scheduler's
  pure-Python reference scan, including the inseparable-intervals error;
* both conflict engines agree end to end, up to byte-identical E6/E7 tables.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LoadBalancerOptions
from repro.core import kernels
from repro.core.kernels import (
    ArrayConflictEngine,
    ArrayTimeline,
    clearing_shift_batch,
    make_engine,
)
from repro.core.load_balancer import balance_schedule
from repro.core.occupancy import ConflictEngine, OccupancyTimeline
from repro.epsilon import EPSILON
from repro.errors import ConfigurationError, SchedulingError
from repro.experiments import (
    AblationConfig,
    ComparisonConfig,
    run_e6_baseline_comparison,
    run_e7_ablation,
)
from repro.scheduling.heuristic import SchedulerOptions, schedule_application
from repro.scheduling.periodic_intervals import (
    circular_overlap,
    clearing_shift,
    normalize_pieces,
    split_wrapping,
)
from repro.workloads.generator import generate_workload
from repro.workloads.spec import WorkloadSpec

# Offsets that exercise the period boundary, sub-epsilon residues and plain
# interior positions (period 10 in most scalar tests below).
_BOUNDARY_OFFSETS = st.one_of(
    st.floats(min_value=0.0, max_value=20.0, allow_nan=False, allow_infinity=False),
    st.sampled_from(
        [0.0, 10.0, 10.0 - 1e-12, 10.0 + 1e-12, 9.999999999, 1e-12, 5.0 - 1e-10]
    ),
)
_LENGTHS = st.one_of(
    st.floats(min_value=0.0, max_value=12.0, allow_nan=False, allow_infinity=False),
    st.sampled_from([0.0, 1e-12, EPSILON, 10.0, 10.0 - 1e-12, 9.999999999]),
)


# ----------------------------------------------------------------------
# Satellite: one canonical normalisation rule
# ----------------------------------------------------------------------
class TestNormalizePieces:
    @given(offset=_BOUNDARY_OFFSETS, length=_LENGTHS)
    @settings(max_examples=300, deadline=None)
    def test_split_wrapping_delegates(self, offset: float, length: float) -> None:
        assert split_wrapping(offset, length, 10) == list(
            normalize_pieces(offset, length, 10)
        )

    @given(
        offset=_BOUNDARY_OFFSETS,
        length=_LENGTHS,
        stored=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=19.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=9.0, allow_nan=False),
            ),
            max_size=6,
        ),
    )
    @settings(
        max_examples=300, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_overlaps_fast_path_equals_split_wrapping_path(
        self,
        offset: float,
        length: float,
        stored: list[tuple[float, float]],
    ) -> None:
        """The query fast path answers exactly what the slow path would.

        The slow reference normalises the query through ``split_wrapping``
        and tests every stored piece linearly — the pre-refactor semantics
        the inlined fast path once drifted away from at the period boundary.
        """
        timeline = OccupancyTimeline(10)
        for piece_offset, piece_length in stored:
            timeline.add(piece_offset, piece_length)

        def slow(query_offset: float, query_length: float) -> bool:
            if query_length <= EPSILON:
                return False
            for begin, end in split_wrapping(query_offset, query_length, 10):
                for piece_start, piece_end, _owner in timeline.intervals():
                    if piece_end > begin + EPSILON and piece_start < end - EPSILON:
                        return True
            return False

        assert timeline.overlaps(offset, length) == slow(offset, length)


# ----------------------------------------------------------------------
# Satellite: bulk seeding equals sequential insertion
# ----------------------------------------------------------------------
def _canon(intervals: list[tuple[float, float, object]]):
    """Intervals as a canonically ordered multiset.

    Bulk ``extend`` (stable sort) and sequential ``add`` (``bisect_left``
    insertion) order *equal-start* pieces differently; every query is
    order-independent among ties, so equivalence is multiset equality.
    """
    return sorted(intervals, key=lambda piece: (piece[0], piece[1], str(piece[2])))


class TestExtendBulk:
    def _random_items(self, rng: random.Random, count: int):
        return [
            (rng.uniform(0, 30), rng.uniform(0, 12), rng.choice(["a", "b", None]))
            for _ in range(count)
        ]

    @pytest.mark.parametrize("factory", [OccupancyTimeline, ArrayTimeline])
    def test_extend_equals_sequential_add(self, factory) -> None:
        rng = random.Random(1207)
        for trial in range(25):
            items = self._random_items(rng, rng.randrange(0, 20))
            bulk, sequential = factory(15), factory(15)
            bulk.extend(items)
            for offset, length, owner in items:
                sequential.add(offset, length, owner)
            assert _canon(bulk.intervals()) == _canon(sequential.intervals()), f"trial {trial}"
            assert bulk.busy_time == sequential.busy_time
            for _query in range(20):
                offset, length = rng.uniform(0, 30), rng.uniform(0, 10)
                assert bulk.overlaps(offset, length) == sequential.overlaps(offset, length)

    @pytest.mark.parametrize("factory", [OccupancyTimeline, ArrayTimeline])
    def test_extend_into_populated_timeline(self, factory) -> None:
        rng = random.Random(42)
        bulk, sequential = factory(15), factory(15)
        for offset, length, owner in self._random_items(rng, 10):
            bulk.add(offset, length, owner)
            sequential.add(offset, length, owner)
        items = self._random_items(rng, 12)
        bulk.extend(items)
        for offset, length, owner in items:
            sequential.add(offset, length, owner)
        assert _canon(bulk.intervals()) == _canon(sequential.intervals())

    @pytest.mark.parametrize("factory", [OccupancyTimeline, ArrayTimeline])
    def test_empty_extend_is_a_no_op(self, factory) -> None:
        timeline = factory(10)
        timeline.add(1.0, 2.0, "a")
        before = timeline.intervals()
        timeline.extend([])
        timeline.extend([(3.0, 0.0, "b")])  # zero-length normalises away
        assert timeline.intervals() == before

    def test_queries_after_extend(self) -> None:
        """The rebuilt prefix maximum still answers queries correctly."""
        rng = random.Random(7)
        items = self._random_items(rng, 15)
        for factory in (OccupancyTimeline, ArrayTimeline):
            timeline = factory(20)
            timeline.extend(items)
            reference = OccupancyTimeline(20)
            for offset, length, owner in items:
                reference.add(offset, length, owner)
            for _ in range(50):
                offset, length = rng.uniform(0, 25), rng.uniform(0, 8)
                assert timeline.overlaps(offset, length) == reference.overlaps(
                    offset, length
                )


# ----------------------------------------------------------------------
# Satellite: epsilon-matched removal (the exact-float ulp bugfix)
# ----------------------------------------------------------------------
class TestRemoveEpsilonMatched:
    @pytest.mark.parametrize("factory", [OccupancyTimeline, ArrayTimeline])
    def test_remove_matches_within_an_ulp(self, factory) -> None:
        """``shift()`` recomputes offsets via %-arithmetic; the recomputed
        value can land an ulp away from what was stored.  0.1 + 0.2 differs
        from 0.3 by ~5.6e-17 — far below EPSILON, so removal must succeed."""
        recomputed = 0.1 + 0.2
        assert recomputed != 0.3 and abs(recomputed - 0.3) <= EPSILON
        timeline = factory(10)
        timeline.add(0.3, 2.0, "t")
        timeline.remove(recomputed, 2.0, "t")
        assert timeline.intervals() == []

    @pytest.mark.parametrize("factory", [OccupancyTimeline, ArrayTimeline])
    def test_remove_beyond_epsilon_diverges(self, factory) -> None:
        timeline = factory(10)
        timeline.add(0.3, 2.0, "t")
        with pytest.raises(SchedulingError, match="bookkeeping diverged"):
            timeline.remove(0.3 + 10 * EPSILON, 2.0, "t")

    @pytest.mark.parametrize("factory", [OccupancyTimeline, ArrayTimeline])
    def test_remove_requires_matching_owner(self, factory) -> None:
        timeline = factory(10)
        timeline.add(1.0, 2.0, "a")
        with pytest.raises(SchedulingError, match="bookkeeping diverged"):
            timeline.remove(1.0, 2.0, "b")
        timeline.remove(1.0, 2.0, "a")
        assert len(timeline) == 0

    @pytest.mark.parametrize("factory", [OccupancyTimeline, ArrayTimeline])
    def test_shift_round_trip_through_modulo_arithmetic(self, factory) -> None:
        """The balancer's shift pattern: store x % H, remove (x + H) % H."""
        period = 7
        timeline = factory(period)
        for k in range(1, 30):
            offset = (0.1 * k) % period
            timeline.add(offset, 0.05, f"t{k}")
        for k in range(1, 30):
            timeline.remove((0.1 * k + 3 * period) % period, 0.05, f"t{k}")
        assert len(timeline) == 0


# ----------------------------------------------------------------------
# Tentpole: ArrayTimeline ≡ OccupancyTimeline
# ----------------------------------------------------------------------
class TestArrayTimelineEquivalence:
    def test_random_operation_sequences(self) -> None:
        rng = random.Random(2008)
        owners = ["a", "b", "c", None]
        for trial in range(60):
            period = rng.choice([5, 10, 16])
            python_timeline = OccupancyTimeline(period)
            array_timeline = ArrayTimeline(period)
            live: list[tuple[float, float, object]] = []
            for _step in range(rng.randrange(1, 30)):
                action = rng.random()
                if action < 0.5 or not live:
                    offset = rng.uniform(0, 2 * period)
                    length = rng.choice(
                        [0.0, rng.uniform(0, period / 3), period, rng.uniform(0, period)]
                    )
                    owner = rng.choice(owners)
                    python_timeline.add(offset, length, owner)
                    array_timeline.add(offset, length, owner)
                    live.append((offset, length, owner))
                elif action < 0.65:
                    items = [
                        (rng.uniform(0, period), rng.uniform(0, period / 2), rng.choice(owners))
                        for _ in range(rng.randrange(0, 5))
                    ]
                    python_timeline.extend(items)
                    array_timeline.extend(items)
                    live.extend(items)
                else:
                    offset, length, owner = live.pop(rng.randrange(len(live)))
                    python_timeline.remove(offset, length, owner)
                    array_timeline.remove(offset, length, owner)
                assert python_timeline.intervals() == array_timeline.intervals()
                assert python_timeline.busy_time == array_timeline.busy_time
                assert len(python_timeline) == len(array_timeline)
                for _query in range(5):
                    query = (rng.uniform(0, 2 * period), rng.uniform(0, period))
                    exclude = frozenset(rng.sample(owners, rng.randrange(0, 3)))
                    assert python_timeline.overlaps(*query, exclude) == array_timeline.overlaps(
                        *query, exclude
                    ), f"trial {trial} query {query} exclude {exclude}"

    def test_overlaps_batch_equals_per_object_overlaps(self) -> None:
        rng = random.Random(77)
        owners = ["a", "b", None]
        for _trial in range(40):
            period = 12
            python_timeline = OccupancyTimeline(period)
            array_timeline = ArrayTimeline(period)
            for _ in range(rng.randrange(0, 12)):
                piece = (rng.uniform(0, 24), rng.uniform(0, 13), rng.choice(owners))
                python_timeline.add(*piece)
                array_timeline.add(*piece)
            pattern = [
                rng.choice(
                    [
                        (rng.uniform(0, 24), rng.uniform(0, 6)),  # interior
                        (rng.uniform(8, 12), rng.uniform(4, 8)),  # wrapping
                        (rng.uniform(0, 12), 0.0),  # zero length
                        (rng.uniform(0, 12), float(period)),  # full period
                    ]
                )
                for _ in range(rng.randrange(0, 8))
            ]
            exclude = frozenset(rng.sample(owners, rng.randrange(0, 3)))
            batch = array_timeline.overlaps_batch(pattern, exclude)
            assert batch.shape == (len(pattern),)
            for j, (offset, length) in enumerate(pattern):
                expected = python_timeline.overlaps(offset, length, exclude)
                assert bool(batch[j]) == expected
                assert array_timeline.overlaps(offset, length, exclude) == expected

    def test_batch_on_empty_timeline_and_empty_pattern(self) -> None:
        timeline = ArrayTimeline(10)
        assert timeline.overlaps_batch([]).tolist() == []
        assert timeline.overlaps_batch([(1.0, 2.0)]).tolist() == [False]
        timeline.add(0.0, 10.0)
        assert timeline.overlaps_batch([]).tolist() == []
        assert not timeline.overlaps_pattern([(3.0, 0.0)])
        assert timeline.overlaps_pattern([(3.0, 0.0), (1.0, 1.0)])

    def test_unknown_excluded_owner_is_ignored(self) -> None:
        timeline = ArrayTimeline(10)
        timeline.add(1.0, 2.0, "a")
        assert timeline.overlaps(1.0, 2.0, frozenset({"never-seen"}))
        assert not timeline.overlaps(1.0, 2.0, frozenset({"a"}))


# ----------------------------------------------------------------------
# Tentpole: the scheduler's clearing-shift kernel
# ----------------------------------------------------------------------
def _reference_clearing_shift(
    offsets: list[float],
    length: float,
    busy: list[tuple[float, float]],
    period: float,
) -> float:
    """The scheduler's pure-Python first-conflict scan (row-major order)."""
    for offset in offsets:
        for busy_offset, busy_length in busy:
            if circular_overlap(offset, length, busy_offset, busy_length, period):
                return clearing_shift(offset, length, busy_offset, busy_length, period)
    return 0.0


class TestClearingShiftBatch:
    @given(
        offsets=st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False), max_size=5
        ),
        length=st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
        busy=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
            ),
            max_size=6,
        ),
    )
    @settings(
        max_examples=400, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_dense_and_windowed_match_the_reference(
        self,
        offsets: list[float],
        length: float,
        busy: list[tuple[float, float]],
    ) -> None:
        period = 10.0
        busy = sorted(busy)  # the kernel requires ascending stored starts
        offset_arr = np.asarray(offsets, dtype=np.float64)
        busy_starts = np.asarray([b[0] for b in busy], dtype=np.float64)
        busy_lengths = np.asarray([b[1] for b in busy], dtype=np.float64)
        max_busy = float(busy_lengths.max()) if busy else 0.0

        def outcome(run):
            try:
                return ("ok", run())
            except SchedulingError:
                return ("raises", None)

        expected = outcome(lambda: _reference_clearing_shift(offsets, length, busy, period))
        dense = outcome(
            lambda: clearing_shift_batch(
                offset_arr, length, busy_starts, busy_lengths, period
            )
        )
        windowed = outcome(
            lambda: clearing_shift_batch(
                offset_arr,
                length,
                busy_starts,
                busy_lengths,
                period,
                max_busy_length=max_busy,
            )
        )
        assert dense == expected
        assert windowed == expected

    def test_trivial_inputs(self) -> None:
        empty = np.asarray([], dtype=np.float64)
        some = np.asarray([1.0], dtype=np.float64)
        assert clearing_shift_batch(some, 0.0, some, some, 10.0) == 0.0
        assert clearing_shift_batch(empty, 1.0, some, some, 10.0) == 0.0
        assert clearing_shift_batch(some, 1.0, empty, empty, 10.0) == 0.0

    def test_inseparable_intervals_raise_like_the_scalar_helper(self) -> None:
        offsets = np.asarray([0.0], dtype=np.float64)
        busy_starts = np.asarray([1.0], dtype=np.float64)
        busy_lengths = np.asarray([6.0], dtype=np.float64)
        with pytest.raises(SchedulingError):
            clearing_shift_batch(offsets, 6.0, busy_starts, busy_lengths, 10.0)
        with pytest.raises(SchedulingError):
            clearing_shift_batch(
                offsets, 6.0, busy_starts, busy_lengths, 10.0, max_busy_length=6.0
            )


# ----------------------------------------------------------------------
# Tentpole: engine parity, from single calls to whole experiments
# ----------------------------------------------------------------------
class TestEngineParity:
    def test_make_engine_kinds(self) -> None:
        assert isinstance(make_engine("python", 8, ["p0"]), ConflictEngine)
        assert isinstance(make_engine("array", 8, ["p0"]), ArrayConflictEngine)
        with pytest.raises(SchedulingError, match="Unknown conflict-engine kind"):
            make_engine("fortran", 8, ["p0"])

    def test_options_validate_engine_and_stride(self) -> None:
        assert LoadBalancerOptions().engine == kernels.DEFAULT_ENGINE
        with pytest.raises(ConfigurationError):
            LoadBalancerOptions(engine="fortran")
        with pytest.raises(ConfigurationError):
            LoadBalancerOptions(cross_check_stride=0)
        with pytest.raises(ConfigurationError):
            LoadBalancerOptions(cross_check=False, cross_check_stride=7)
        LoadBalancerOptions(cross_check=True, cross_check_stride=7)

    def test_default_engine_is_read_at_construction_time(self, monkeypatch) -> None:
        monkeypatch.setattr(kernels, "DEFAULT_ENGINE", "python")
        assert LoadBalancerOptions().engine == "python"
        monkeypatch.setattr(kernels, "DEFAULT_ENGINE", "array")
        assert LoadBalancerOptions().engine == "array"

    def test_conflict_engines_agree_on_random_drivers(self) -> None:
        rng = random.Random(99)
        processors = ["p0", "p1", "p2"]
        for _trial in range(25):
            python_engine = ConflictEngine(12, processors)
            array_engine = ArrayConflictEngine(12, processors)
            resident: list[tuple[str, float, float, str]] = []
            for step in range(30):
                processor = rng.choice(processors)
                action = rng.random()
                if action < 0.35:
                    offset, length = rng.uniform(0, 12), rng.uniform(0, 3)
                    python_engine.occupy(processor, offset, length)
                    array_engine.occupy(processor, offset, length)
                elif action < 0.6 or not resident:
                    offset, length, owner = (
                        rng.uniform(0, 12),
                        rng.uniform(0, 3),
                        f"t{step}",
                    )
                    python_engine.reside(processor, offset, length, owner)
                    array_engine.reside(processor, offset, length, owner)
                    resident.append((processor, offset, length, owner))
                elif action < 0.8:
                    processor, offset, length, owner = resident.pop(
                        rng.randrange(len(resident))
                    )
                    python_engine.release(processor, offset, length, owner)
                    array_engine.release(processor, offset, length, owner)
                else:
                    index = rng.randrange(len(resident))
                    processor, offset, length, owner = resident[index]
                    new_offset = rng.uniform(0, 12)
                    python_engine.shift(processor, offset, new_offset, length, owner)
                    array_engine.shift(processor, offset, new_offset, length, owner)
                    resident[index] = (processor, new_offset, length, owner)
                pattern = [
                    (rng.uniform(0, 12), rng.uniform(0, 4))
                    for _ in range(rng.randrange(0, 4))
                ]
                include = rng.random() < 0.5
                exclude = frozenset(
                    owner for _p, _o, _l, owner in rng.sample(resident, min(2, len(resident)))
                )
                assert python_engine.compatible_batch(
                    processors, pattern, include_resident=include, exclude=exclude
                ) == array_engine.compatible_batch(
                    processors, pattern, include_resident=include, exclude=exclude
                )
            for name in processors:
                assert python_engine.moved_pattern(name) == array_engine.moved_pattern(name)
                assert python_engine.resident_pattern(name) == array_engine.resident_pattern(name)

    def _balanced(self, engine: str):
        spec = WorkloadSpec(
            task_count=24,
            processor_count=4,
            utilization=0.35,
            seed=1207,
            label=f"kernel-parity-{engine}",
        )
        workload = generate_workload(spec)
        schedule = schedule_application(
            workload.graph, workload.architecture, SchedulerOptions()
        )
        return balance_schedule(
            schedule,
            LoadBalancerOptions(engine=engine, cross_check=True),
        )

    def test_whole_balancer_runs_identically_on_both_engines(self) -> None:
        python_result = self._balanced("python")
        array_result = self._balanced("array")
        assert [
            (d.block.id, d.chosen_processor, d.placement_start, d.gain)
            for d in python_result.decisions
        ] == [
            (d.block.id, d.chosen_processor, d.placement_start, d.gain)
            for d in array_result.decisions
        ]
        assert python_result.makespan_after == array_result.makespan_after
        assert python_result.evaluations == array_result.evaluations

    def test_e6_e7_tables_byte_identical_across_engines(self, monkeypatch) -> None:
        """The acceptance bar of ISSUE 10: whole experiment tables must not
        change by a single byte when the engine flips."""
        e6_config = ComparisonConfig.tiny()
        e7_config = AblationConfig.tiny()
        monkeypatch.setattr(kernels, "DEFAULT_ENGINE", "array")
        e6_array = run_e6_baseline_comparison(e6_config).table
        e7_array = run_e7_ablation(e7_config).table
        monkeypatch.setattr(kernels, "DEFAULT_ENGINE", "python")
        e6_python = run_e6_baseline_comparison(e6_config).table
        e7_python = run_e7_ablation(e7_config).table
        assert e6_array == e6_python
        assert e7_array == e7_python
