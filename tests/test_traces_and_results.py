"""Tests of the result/trace/memory-tracker detail objects.

Covers the pieces not exercised end-to-end elsewhere: move-decision
introspection, simulation trace rendering, memory-timeline queries and the
error hierarchy.
"""

import pytest

import repro
from repro.core import CostPolicy, LoadBalancer, LoadBalancerOptions
from repro.errors import (
    AnalysisError,
    ArchitectureError,
    InfeasibleError,
    ModelError,
    ReproError,
    SchedulingError,
    ValidationError,
    WorkloadError,
)
from repro.simulation import SimulationOptions, simulate
from repro.simulation.memory_tracker import MemoryTimeline, MemoryTracker
from repro.simulation.trace import ExecutionRecord, SimulationTrace


class TestErrorsAndPackage:
    def test_every_error_derives_from_repro_error(self):
        for exc_type in (
            ModelError,
            ArchitectureError,
            SchedulingError,
            InfeasibleError,
            ValidationError,
            WorkloadError,
            AnalysisError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_infeasible_error_carries_detail(self):
        error = InfeasibleError("nope", detail="task-x")
        assert error.detail == "task-x"

    def test_validation_error_carries_violations(self):
        error = ValidationError("bad", violations=["v1", "v2"])
        assert error.violations == ["v1", "v2"]

    def test_package_exports_version_and_api(self):
        assert isinstance(repro.__version__, str)
        assert hasattr(repro, "balance_schedule")
        assert hasattr(repro, "TaskGraph")


class TestMoveDecisionIntrospection:
    @pytest.fixture()
    def result(self, paper_schedule):
        return LoadBalancer(
            paper_schedule, LoadBalancerOptions(policy=CostPolicy.LEXICOGRAPHIC)
        ).run()

    def test_candidate_reports_cover_all_processors(self, result):
        for decision in result.decisions:
            assert {candidate.target for candidate in decision.candidates} == {"P1", "P2", "P3"}

    def test_moved_away_flag(self, result):
        by_label = {d.block.label: d for d in result.decisions}
        assert not by_label["[a#0]"].moved_away
        assert by_label["[a#1]"].moved_away

    def test_describe_contains_scores_and_flags(self, result):
        text = result.decisions[2].describe()
        assert "G=" in text and "lambda=" in text and "chosen" in text

    def test_result_moves_count(self, result):
        assert result.moves == sum(1 for d in result.decisions if d.moved_away)

    def test_summary_lists_warnings_when_present(self, result):
        result.warnings.append("synthetic warning")
        assert "synthetic warning" in result.summary()


class TestSimulationTraceDetails:
    def test_execution_record_lateness(self):
        record = ExecutionRecord("a", 0, 1, "P1", planned_start=4.0, actual_start=5.5, end=6.5)
        assert record.lateness == pytest.approx(1.5)
        assert "rep 1" in record.label

    def test_empty_trace_rendering(self):
        trace = SimulationTrace()
        assert trace.gantt() == "(empty trace)"
        assert trace.makespan == 0.0
        assert "no violations" in trace.summary()

    def test_records_for_processor(self, paper_schedule):
        result = simulate(paper_schedule, SimulationOptions(hyper_periods=1))
        records = result.trace.records_for("P1")
        assert [record.task for record in records] == ["a", "a", "a", "a"]
        assert records == sorted(records, key=lambda r: r.actual_start)

    def test_medium_utilization_reported(self, paper_schedule):
        result = simulate(paper_schedule)
        assert 0.0 < result.medium_utilization()["Med"] <= 1.0


class TestMemoryTracker:
    def test_timeline_peak_and_occupancy(self):
        timeline = MemoryTimeline("P1", static=3.0)
        timeline.change(1.0, +2.0)
        timeline.change(2.0, +1.0)
        timeline.change(4.0, -2.0)
        assert timeline.peak == pytest.approx(3.0)
        assert timeline.peak_total == pytest.approx(6.0)
        assert timeline.occupancy_at(0.5) == 0.0
        assert timeline.occupancy_at(2.5) == pytest.approx(3.0)
        assert timeline.occupancy_at(5.0) == pytest.approx(1.0)

    def test_tracker_local_buffers_opt_in(self):
        local_off = MemoryTracker(("P1",), include_local=False)
        local_off.data_arrived("P1", 1.0, ("c", 0), 0, 2.0, local=True)
        assert local_off.peak_buffer("P1") == 0.0

        local_on = MemoryTracker(("P1",), include_local=True)
        local_on.data_arrived("P1", 1.0, ("c", 0), 0, 2.0, local=True)
        assert local_on.peak_buffer("P1") == pytest.approx(2.0)
        local_on.consumer_finished(2.0, ("c", 0), 0)
        assert local_on.outstanding() == 0

    def test_tracker_peaks_per_processor(self):
        tracker = MemoryTracker(("P1", "P2"), {"P1": 5.0})
        tracker.data_arrived("P2", 1.0, ("c", 0), 0, 3.0)
        tracker.data_arrived("P2", 2.0, ("c", 0), 0, 3.0)
        assert tracker.peak_buffers() == {"P1": 0.0, "P2": 6.0}
        assert tracker.peak_totals()["P1"] == pytest.approx(5.0)
