"""Tests of repro.core.conditions and repro.core.cost."""

import pytest

from repro.core.blocks import build_blocks
from repro.core.conditions import (
    BalancingState,
    ProcessorState,
    is_eligible,
    satisfies_lcm_condition,
    steady_state_compatible,
)
from repro.core.cost import (
    CostPolicy,
    evaluate_move,
    policy_score,
    prepare_move_context,
)


@pytest.fixture()
def paper_state(paper_schedule):
    state = BalancingState(hyper_period=paper_schedule.graph.hyper_period)
    state.current = {
        si.key: (si.processor, si.start) for si in paper_schedule.instances
    }
    for name in paper_schedule.architecture.processor_names:
        state.processor(name)
        state.moved_patterns[name] = []
    return state


class TestProcessorState:
    def test_register_accumulates(self, paper_schedule):
        blocks = build_blocks(paper_schedule)
        proc = ProcessorState("P1")
        assert proc.is_empty
        proc.register(blocks[0], 0.0)
        proc.register(blocks[3], 6.0)
        assert not proc.is_empty
        assert proc.moved_blocks == 2
        assert proc.moved_memory == pytest.approx(8.0)
        assert proc.first_start == 0.0
        assert proc.last_end == pytest.approx(7.0)

    def test_register_with_explicit_end(self, paper_schedule):
        blocks = build_blocks(paper_schedule)
        proc = ProcessorState("P1")
        proc.register(blocks[0], 0.0, end=2.5)
        assert proc.last_end == 2.5


class TestEligibilityAndLcm:
    def test_empty_processor_always_eligible(self, paper_schedule):
        block = build_blocks(paper_schedule)[2]
        assert is_eligible(block, 5.0, ProcessorState("P3"))

    def test_busy_processor_ineligible(self, paper_schedule):
        block = build_blocks(paper_schedule)[2]
        proc = ProcessorState("P1", moved_blocks=1, last_end=9.0)
        assert not is_eligible(block, 5.0, proc)

    def test_lcm_condition(self, paper_schedule):
        blocks = {b.label: b for b in build_blocks(paper_schedule)}
        de = blocks["[d#0-e#0]"]
        early = ProcessorState("P1", moved_blocks=1, first_start=0.0)
        late = ProcessorState("P3", moved_blocks=1, first_start=6.0)
        # Placing d-e at 12 (exec 2) violates 0+12 but satisfies 6+12.
        assert not satisfies_lcm_condition(de, 12.0, early, 12)
        assert satisfies_lcm_condition(de, 12.0, late, 12)

    def test_lcm_condition_empty_processor(self, paper_schedule):
        block = build_blocks(paper_schedule)[0]
        assert satisfies_lcm_condition(block, 100.0, ProcessorState("P2"), 12)

    def test_steady_state_compatible(self):
        assert steady_state_compatible([(0.0, 1.0)], [(2.0, 1.0)], 12)
        assert not steady_state_compatible([(0.0, 2.0)], [(1.0, 1.0)], 12)
        # Wrap-around conflict: offset 11 length 2 wraps onto [0, 1).
        assert not steady_state_compatible([(11.0, 2.0)], [(0.5, 1.0)], 12)


class TestEvaluateMove:
    def test_step3_gain_on_p2(self, paper_schedule, paper_state):
        """Reproduces step 3 of section 3.3: moving [b#0-c#0] to P2 gains 1."""
        blocks = {b.label: b for b in build_blocks(paper_schedule)}
        graph, arch = paper_schedule.graph, paper_schedule.architecture
        # Steps 1 and 2 already applied: a#0 kept on P1, a#1 moved to P2.
        paper_state.processor("P1").register(blocks["[a#0]"], 0.0)
        paper_state.moved_patterns["P1"].append((0.0, 1.0))
        paper_state.processor("P2").register(blocks["[a#1]"], 3.0)
        paper_state.moved_patterns["P2"].append((3.0, 1.0))
        paper_state.current[("a", 1)] = ("P2", 3.0)

        bc = blocks["[b#0-c#0]"]
        to_p2 = evaluate_move(bc, "P2", paper_state, graph, arch)
        to_p1 = evaluate_move(bc, "P1", paper_state, graph, arch)
        to_p3 = evaluate_move(bc, "P3", paper_state, graph, arch)
        assert to_p2.feasible and to_p2.gain == pytest.approx(1.0)
        assert to_p2.placement_start == pytest.approx(4.0)
        assert to_p1.gain == pytest.approx(0.0)
        assert to_p3.gain == pytest.approx(0.0)

    def test_pinned_block_infeasible_when_data_late(self, paper_schedule, paper_state):
        """A category-2 block cannot move where its data would arrive too late."""
        blocks = {b.label: b for b in build_blocks(paper_schedule)}
        graph, arch = paper_schedule.graph, paper_schedule.architecture
        a3 = blocks["[a#3]"]
        evaluation = evaluate_move(a3, "P2", paper_state, graph, arch)
        # a#3 is pinned at 9 and has no producers: the move is feasible with gain 0.
        assert evaluation.feasible and evaluation.gain == 0.0

        # b#1-c#1 pinned at 11; if a#3 stays on P1 completing at 10, moving the
        # block to P3 means a#3's data arrives at 11 <= 11: feasible; but if we
        # pretend a#3 completes at 10.5 the arrival becomes 11.5 > 11: infeasible.
        paper_state.current[("a", 3)] = ("P1", 9.5)
        bc2 = blocks["[b#1-c#1]"]
        late = evaluate_move(bc2, "P3", paper_state, graph, arch)
        assert not late.feasible
        assert late.gain < 0


class TestMoveContext:
    def test_cached_evaluation_equals_from_scratch(self, paper_schedule, paper_state):
        """The per-block MoveContext must not change a single evaluation field.

        ``evaluate_move`` with a shared context is the balancer's hot path;
        the context-free call rebuilds everything from ``state.current``.
        Field-for-field equality over every (block, processor) pair of the
        worked example is the direct equivalence check backing the
        ``cross_check`` differential oracle.
        """
        graph, arch = paper_schedule.graph, paper_schedule.architecture
        for block in build_blocks(paper_schedule):
            context = prepare_move_context(block, paper_state, graph, arch)
            assert context.block_id == block.id
            for name in arch.processor_names:
                cached = evaluate_move(block, name, paper_state, graph, arch, context=context)
                fresh = evaluate_move(block, name, paper_state, graph, arch)
                assert cached == fresh

    def test_stale_context_is_rebuilt(self, paper_schedule, paper_state):
        """A context built for another block must be ignored, not misused."""
        graph, arch = paper_schedule.graph, paper_schedule.architecture
        blocks = build_blocks(paper_schedule)
        wrong = prepare_move_context(blocks[0], paper_state, graph, arch)
        for name in arch.processor_names:
            with_stale = evaluate_move(blocks[2], name, paper_state, graph, arch, context=wrong)
            fresh = evaluate_move(blocks[2], name, paper_state, graph, arch)
            assert with_stale == fresh


class TestPolicyScores:
    def test_ratio_matches_paper_step2(self):
        proc_with_memory = ProcessorState("P1", moved_blocks=1, moved_memory=4.0)
        empty = ProcessorState("P2")
        from repro.core.cost import MoveEvaluation

        evaluation = MoveEvaluation(0, "P1", "P1", True, 0.0, 3.0, 4.0, 0.0)
        assert policy_score(evaluation, proc_with_memory, CostPolicy.RATIO)[0] == pytest.approx(0.25)
        assert policy_score(evaluation, empty, CostPolicy.RATIO)[0] == pytest.approx(1.0)
        assert policy_score(evaluation, empty, CostPolicy.RATIO_STRICT)[0] == pytest.approx(0.0)

    def test_lexicographic_prefers_gain_then_memory(self):
        from repro.core.cost import MoveEvaluation

        gain_move = MoveEvaluation(0, "P1", "P2", True, 1.0, 4.0, 8.0, 0.0)
        no_gain = MoveEvaluation(0, "P1", "P3", True, 0.0, 5.0, 0.0, 0.0)
        busy = ProcessorState("P2", moved_blocks=2, moved_memory=8.0)
        empty = ProcessorState("P3")
        assert policy_score(gain_move, busy, CostPolicy.LEXICOGRAPHIC) > policy_score(
            no_gain, empty, CostPolicy.LEXICOGRAPHIC
        )

    def test_memory_only_ignores_gain(self):
        from repro.core.cost import MoveEvaluation

        big_gain = MoveEvaluation(0, "P1", "P2", True, 10.0, 4.0, 8.0, 0.0)
        small_gain = MoveEvaluation(0, "P1", "P3", True, 0.0, 5.0, 2.0, 0.0)
        busy = ProcessorState("P2", moved_blocks=2, moved_memory=8.0)
        lighter = ProcessorState("P3", moved_blocks=1, moved_memory=2.0)
        assert policy_score(small_gain, lighter, CostPolicy.MEMORY_ONLY) > policy_score(
            big_gain, busy, CostPolicy.MEMORY_ONLY
        )

    def test_load_only_uses_execution(self):
        from repro.core.cost import MoveEvaluation

        evaluation = MoveEvaluation(0, "P1", "P2", True, 0.0, 4.0, 0.0, 6.0)
        busy = ProcessorState("P2", moved_blocks=1, moved_execution=6.0)
        idle = ProcessorState("P3")
        assert policy_score(evaluation, idle, CostPolicy.LOAD_ONLY) > policy_score(
            evaluation, busy, CostPolicy.LOAD_ONLY
        )
