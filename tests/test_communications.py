"""Tests of repro.scheduling.communications."""

import pytest

from repro.scheduling.communications import (
    arrival_times_for_instance,
    edge_arrival_time,
    synthesize_communications,
)
from repro.scheduling.schedule import Schedule


class TestEdgeArrivalTime:
    def test_remote_adds_latency(self, paper_arch):
        assert edge_arrival_time(4.0, "P1", "P2", paper_arch, 1.0) == pytest.approx(5.0)

    def test_local_is_immediate(self, paper_arch):
        assert edge_arrival_time(4.0, "P1", "P1", paper_arch, 1.0) == pytest.approx(4.0)


class TestSynthesize:
    def test_paper_schedule_transfers(self, paper_schedule):
        operations = synthesize_communications(paper_schedule)
        # Cross-processor edges of Figure 3: 4 (a->b, P1->P2), 2 (b->d, P2->P3),
        # 2 (c->e, P2->P3); b->c and d->e are local.
        assert len(operations) == 8
        targets = {op.target for op in operations}
        assert targets == {"P2", "P3"}
        for op in operations:
            producer = paper_schedule.instance(op.producer, op.producer_index)
            assert op.start == pytest.approx(producer.end)
            assert op.duration == pytest.approx(1.0)

    def test_no_transfers_when_colocated(self, paper_graph, paper_arch, paper_schedule):
        moved = {si.key: ("P1", si.start) for si in paper_schedule.instances}
        colocated = paper_schedule.moved(moved)
        assert synthesize_communications(colocated) == ()

    def test_arrival_times_for_instance(self, paper_schedule):
        arrivals = arrival_times_for_instance(paper_schedule, "b", 0)
        assert len(arrivals) == 2
        assert max(arrivals.values()) == pytest.approx(5.0)

    def test_operations_sorted_by_start(self, paper_schedule):
        operations = synthesize_communications(paper_schedule)
        starts = [op.start for op in operations]
        assert starts == sorted(starts)

    def test_schedule_roundtrip_keeps_instances(self, paper_schedule):
        rebuilt = Schedule(
            paper_schedule.graph,
            paper_schedule.architecture,
            paper_schedule.instances,
            synthesize_communications(paper_schedule),
        )
        assert len(rebuilt) == len(paper_schedule)
