"""Property tests of the counterexample minimiser (slow layer).

The two contracts the hunt relies on:

1. a minimised counterexample still trips its objective, and
2. it is never larger than its parent on any ``spec_size`` component.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search import evaluate_objective, minimize_spec, objective_info, spec_size
from repro.workloads.spec import GraphShape, WorkloadSpec

pytestmark = pytest.mark.slow

#: Specs drawn from the layered region of the search space (layered graphs
#: are valid at every task count, so shrinking never leaves the generator's
#: domain for structural reasons alone).
firing_specs = st.builds(
    WorkloadSpec,
    task_count=st.integers(3, 24),
    processor_count=st.integers(2, 4),
    utilization=st.floats(0.1, 0.6),
    base_period=st.sampled_from([10, 20, 40]),
    period_levels=st.integers(1, 3),
    period_ratio=st.integers(2, 3),
    edge_probability=st.floats(0.0, 0.08),
    shape=st.just(GraphShape.LAYERED),
    seed=st.integers(0, 2**31 - 1),
)


def _objective_fires(name):
    threshold = objective_info(name).threshold

    def fires(spec: WorkloadSpec):
        result = evaluate_objective(name, spec)
        return result.status == "ok" and result.score >= threshold, result.score

    return fires


@given(spec=firing_specs)
@settings(max_examples=30, deadline=None)
def test_minimised_counterexample_still_fires(spec):
    # edge_probability <= 0.08 keeps every drawn spec above the planted
    # threshold (score = 1 - edge_probability >= 0.92 > 0.9), so the
    # minimiser always starts from a firing parent — exactly the situation
    # _collect() puts it in.
    fires = _objective_fires("planted")
    fired, _score = fires(spec)
    assert fired
    result = minimize_spec(spec, fires, max_evaluations=60)
    still_fires, _ = fires(result.spec)
    assert still_fires
    result.spec.validate()


@given(spec=firing_specs)
@settings(max_examples=30, deadline=None)
def test_minimised_spec_never_larger_than_parent(spec):
    fires = _objective_fires("planted")
    result = minimize_spec(spec, fires, max_evaluations=60)
    assert all(
        after <= before
        for before, after in zip(spec_size(spec), spec_size(result.spec))
    )
    # Every kept step in the trace strictly reduced the field it touched.
    for attempt in result.trace:
        if attempt["kept"]:
            assert attempt["to"] < attempt["from"]


@given(
    spec=firing_specs,
    boundary=st.integers(1, 20),
    budget=st.integers(1, 60),
)
@settings(max_examples=40, deadline=None)
def test_minimiser_respects_budget_for_arbitrary_predicates(spec, boundary, budget):
    calls = 0

    def fires(candidate: WorkloadSpec):
        nonlocal calls
        calls += 1
        return candidate.task_count >= boundary, float(candidate.task_count)

    if spec.task_count < boundary:
        return  # the parent contract requires a firing start
    result = minimize_spec(spec, fires, max_evaluations=budget)
    assert result.evaluations == calls <= budget
    assert result.spec.task_count >= boundary
