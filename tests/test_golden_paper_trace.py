"""Golden regression pin of the paper's worked example (section 3.3).

The E1 experiment already checks the headline numbers; this module pins the
*full* move trace of Algorithm 3.2 on the worked example — every decision's
block, chosen processor, placement start, gain, forced flag and propagated
start-time updates — so a refactor of the conflict engine (or of any
acceptance rule) cannot silently change the algorithm's behaviour while
keeping the right totals by accident.

The golden values were captured from the seed implementation (which itself
matches the paper's enumerated steps 1-7, Figures 2-4) and must never change.
"""

from __future__ import annotations

import pytest

from repro.conformance import check_conformance
from repro.core import CostPolicy, LoadBalancer, LoadBalancerOptions

#: (block label, chosen processor, placement start, gain, forced, updated block ids)
GOLDEN_LEX_TRACE = [
    ("[a#0]", "P1", 0.0, 0.0, False, ()),
    ("[a#1]", "P2", 3.0, 0.0, False, ()),
    ("[b#0-c#0]", "P2", 4.0, 1.0, False, (5,)),
    ("[a#2]", "P3", 6.0, 0.0, False, ()),
    ("[a#3]", "P1", 9.0, 0.0, False, ()),
    ("[b#1-c#1]", "P1", 10.0, 0.0, False, ()),
    ("[d#0-e#0]", "P3", 12.0, 1.0, False, ()),
]

GOLDEN_LEX_MEMORY = {"P1": 10.0, "P2": 6.0, "P3": 8.0}
GOLDEN_LEX_MAKESPAN = 14.0

#: The literal eq.-(5) ratio policy diverges from the paper's trace at step 3
#: (DESIGN.md §2, A1/B1); its endpoints are pinned too so the divergence
#: stays the *documented* one.
GOLDEN_RATIO_TRACE = [
    ("[a#0]", "P1", 0.0),
    ("[a#1]", "P2", 3.0),
    ("[b#0-c#0]", "P3", 5.0),
    ("[a#2]", "P1", 6.0),
    ("[a#3]", "P3", 9.0),
    ("[b#1-c#1]", "P2", 11.0),
    ("[d#0-e#0]", "P3", 13.0),
]
GOLDEN_RATIO_MEMORY = {"P1": 8.0, "P2": 6.0, "P3": 10.0}
GOLDEN_RATIO_MAKESPAN = 15.0


@pytest.fixture()
def lex_result(paper_schedule):
    return LoadBalancer(
        paper_schedule, LoadBalancerOptions(policy=CostPolicy.LEXICOGRAPHIC)
    ).run()


class TestLexicographicGoldenTrace:
    """The policy that reproduces the paper's enumerated steps exactly."""

    def test_full_move_trace(self, lex_result):
        trace = [
            (
                decision.block.label,
                decision.chosen_processor,
                decision.placement_start,
                decision.gain,
                decision.forced,
                decision.updated_blocks,
            )
            for decision in lex_result.decisions
        ]
        assert trace == GOLDEN_LEX_TRACE

    def test_per_processor_memory(self, lex_result):
        assert lex_result.memory_after == GOLDEN_LEX_MEMORY

    def test_final_makespan_and_counters(self, lex_result):
        assert lex_result.makespan_after == GOLDEN_LEX_MAKESPAN
        assert lex_result.moves == 3
        # Section 4's complexity claim on the example: M·N_blocks = 3·7.
        assert lex_result.evaluations == 21
        assert lex_result.safety_level == "paper"
        assert lex_result.warnings == []

    def test_trace_identical_under_cross_check(self, paper_schedule, lex_result):
        """The differential oracle changes nothing about the decisions."""
        checked = LoadBalancer(
            paper_schedule,
            LoadBalancerOptions(policy=CostPolicy.LEXICOGRAPHIC, cross_check=True),
        ).run()
        assert [
            (d.block.label, d.chosen_processor, d.placement_start, d.gain)
            for d in checked.decisions
        ] == [
            (d.block.label, d.chosen_processor, d.placement_start, d.gain)
            for d in lex_result.decisions
        ]


class TestRatioGoldenTrace:
    """The documented divergence of the literal eq.-(5) interpretation."""

    def test_trace_and_endpoints(self, paper_schedule):
        result = LoadBalancer(
            paper_schedule, LoadBalancerOptions(policy=CostPolicy.RATIO)
        ).run()
        assert [
            (d.block.label, d.chosen_processor, d.placement_start)
            for d in result.decisions
        ] == GOLDEN_RATIO_TRACE
        assert result.memory_after == GOLDEN_RATIO_MEMORY
        assert result.makespan_after == GOLDEN_RATIO_MAKESPAN


# ---------------------------------------------------------------------------
# Golden conformance reports (the full repro-conformance/1 payloads of the
# worked example, pinned field for field alongside the balancing trace)
# ---------------------------------------------------------------------------
#: Per-check (compared, detail) table of a fully conforming 2-hyper-period
#: replay of the worked example.  10 instances per hyper-period -> 20 record
#: comparisons; 3 processors + the ladder of two repeated patterns -> 10
#: steady pieces; 22 instance-level dependence edges; 3 processors + the
#: buffer-leak comparison -> 4 memory comparisons.  Only the number of
#: modelled transfers differs between the two schedules (8 vs 6 per
#: hyper-period: balancing eliminates two inter-processor dependences).
def golden_conformance_report(label: str, comm_compared: int) -> dict:
    checks = [
        ("verdict_agreement", 1, "analytically feasible"),
        ("clean_replay", 20, ""),
        ("instance_coverage", 20, ""),
        ("start_times", 20, ""),
        ("busy_intervals", 20, ""),
        ("steady_occupancy", 10, ""),
        ("communications", comm_compared, ""),
        ("dependence_order", 22, ""),
        ("memory", 4, ""),
    ]
    return {
        "schema": "repro-conformance/1",
        "label": label,
        "hyper_periods": 2,
        "tolerance": 1e-09,
        "analytical_feasible": True,
        "simulation_clean": True,
        "conforms": True,
        "consistent": True,
        "divergences": 0,
        "checks": [
            {
                "name": name,
                "status": "pass",
                "compared": compared,
                "mismatch_count": 0,
                "mismatches": [],
                "detail": detail,
            }
            for name, compared, detail in checks
        ],
        "first_divergence": None,
    }


class TestGoldenConformanceReports:
    """The simulator agrees with the analytical model on the worked example —
    and the full oracle report must never change shape silently."""

    def test_initial_schedule_report(self, paper_schedule):
        report = check_conformance(paper_schedule, label="paper-initial")
        assert report.to_dict() == golden_conformance_report("paper-initial", 16)

    def test_balanced_schedule_report(self, lex_result):
        report = check_conformance(
            lex_result.balanced_schedule, label="paper-balanced"
        )
        assert report.to_dict() == golden_conformance_report("paper-balanced", 12)
