"""Tests of repro.model.task (Task / TaskInstance)."""

import pytest

from repro.errors import ModelError
from repro.model.task import Task, TaskInstance, instance_label


class TestTask:
    def test_basic_construction(self):
        task = Task("a", period=3, wcet=1.0, memory=4.0)
        assert task.period == 3
        assert task.utilization == pytest.approx(1 / 3)

    def test_rejects_empty_name(self):
        with pytest.raises(ModelError):
            Task("", period=3, wcet=1.0)

    def test_rejects_negative_wcet(self):
        with pytest.raises(ModelError):
            Task("a", period=3, wcet=-1.0)

    def test_rejects_wcet_larger_than_period(self):
        with pytest.raises(ModelError):
            Task("a", period=3, wcet=4.0)

    def test_rejects_negative_memory(self):
        with pytest.raises(ModelError):
            Task("a", period=3, wcet=1.0, memory=-1.0)

    def test_rejects_negative_data_size(self):
        with pytest.raises(ModelError):
            Task("a", period=3, wcet=1.0, data_size=-1.0)

    def test_rejects_non_integer_period(self):
        with pytest.raises(ModelError):
            Task("a", period=2.5, wcet=1.0)

    def test_instances_in_hyper_period(self):
        task = Task("a", period=3, wcet=1.0)
        assert task.instances(12) == 4

    def test_instances_rejects_non_multiple(self):
        task = Task("a", period=5, wcet=1.0)
        with pytest.raises(ModelError):
            task.instances(12)

    def test_with_updates(self):
        task = Task("a", period=3, wcet=1.0, memory=4.0)
        changed = task.with_updates(memory=8.0)
        assert changed.memory == 8.0 and changed.name == "a"
        assert task.memory == 4.0  # original untouched

    def test_metadata_not_part_of_equality(self):
        assert Task("a", 3, 1.0, metadata={"x": 1}) == Task("a", 3, 1.0, metadata={"y": 2})

    def test_wcet_equal_to_period_is_allowed(self):
        Task("a", period=3, wcet=3.0)


class TestTaskInstance:
    def test_labels(self):
        task = Task("a", period=3, wcet=1.0)
        instance = TaskInstance(task, 2)
        assert instance.label == "a#2"
        assert instance_label("a", 2) == "a#2"

    def test_first_instance_flag(self):
        task = Task("a", period=3, wcet=1.0)
        assert TaskInstance(task, 0).is_first
        assert not TaskInstance(task, 1).is_first

    def test_release_offset(self):
        task = Task("a", period=3, wcet=1.0)
        assert TaskInstance(task, 2).release_offset == 6

    def test_key(self):
        task = Task("a", period=3, wcet=1.0)
        assert TaskInstance(task, 1).key() == ("a", 1)

    def test_rejects_negative_index(self):
        task = Task("a", period=3, wcet=1.0)
        with pytest.raises(ModelError):
            TaskInstance(task, -1)
