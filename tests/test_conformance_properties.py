"""Differential property tests: simulator vs analytical model (hypothesis).

For hypothesis-drawn workloads out of the scenario registry, the
discrete-event replay must agree with the analytical model without either
side knowing the other's code:

* the simulated instance *completion order* never contradicts the instance
  dependence graph (a producer always completes no later than any of its
  consumers starts receiving, and strictly before the consumer completes);
* the simulated peak memory (static + consumer-side buffers) never exceeds
  the analytical worst-case bound of
  :func:`repro.metrics.memory.buffered_memory_bound`;
* the full conformance oracle agrees: a schedule the analytical model calls
  feasible replays in exact conformance.

Unschedulable draws are skipped via ``assume`` — the high-utilisation
scenario families legitimately produce them.

The module is marked ``slow`` like the rest of the property layer: CI always
runs it, locally it can be skipped with ``pytest -m "not slow"``.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.conformance import check_conformance
from repro.errors import InfeasibleError
from repro.metrics.memory import buffered_memory_bound
from repro.scenarios.registry import available_scenarios, scenario_info
from repro.scheduling import schedule_application
from repro.scheduling.unrolling import instance_edges
from repro.simulation import replay
from repro.workloads.generator import generate_workload

pytestmark = pytest.mark.slow

_TOL = 1e-9

_CELLS = st.sampled_from(sorted(available_scenarios())).flatmap(
    lambda name: st.tuples(
        st.just(name),
        # Frozen regression scenarios pin exactly one workload (index 0);
        # synthetic families derive a fresh seed for any index.
        st.integers(
            min_value=0,
            max_value=0 if scenario_info(name).frozen else 11,
        ),
    )
)


def _scheduled_cell(scenario: str, index: int):
    """Generate and schedule one scenario cell, skipping unschedulable draws."""
    spec = scenario_info(scenario).workload_spec("tiny", index)
    workload = generate_workload(spec)
    try:
        return schedule_application(workload.graph, workload.architecture)
    except InfeasibleError:
        assume(False)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(cell=_CELLS)
def test_completion_order_respects_dependence_graph(cell):
    schedule = _scheduled_cell(*cell)
    result = replay(schedule, hyper_periods=2)
    records = {
        (record.task, record.index, record.repetition): record
        for record in result.trace.records
    }
    arrivals = {
        (tr.producer_key, tr.consumer_key, tr.repetition): tr.arrival
        for tr in result.trace.transfers
    }
    for edge in instance_edges(schedule.graph):
        for repetition in range(2):
            producer = records[(*edge.producer, repetition)]
            consumer = records[(*edge.consumer, repetition)]
            # The consumer can never complete before its producer.
            assert producer.end <= consumer.end + _TOL
            # Its input must be ready (produced, and transferred when the
            # endpoints sit on different processors) before it starts.
            ready = producer.end
            arrival = arrivals.get((edge.producer, edge.consumer, repetition))
            if arrival is not None:
                assert arrival >= ready - _TOL
                ready = arrival
            assert consumer.actual_start >= ready - _TOL


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(cell=_CELLS)
def test_simulated_peak_memory_within_analytical_bound(cell):
    schedule = _scheduled_cell(*cell)
    result = replay(schedule, hyper_periods=1)
    bound = buffered_memory_bound(schedule)
    static = schedule.memory_by_processor()
    for name, peak in result.peak_memory().items():
        assert peak <= bound.get(name, 0.0) + _TOL
        assert peak >= static.get(name, 0.0) - _TOL
    assert result.memory.outstanding() == 0


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(cell=_CELLS)
def test_feasible_schedules_replay_in_exact_conformance(cell):
    schedule = _scheduled_cell(*cell)
    report = check_conformance(schedule)
    assert report.analytical_feasible  # schedule_application guarantees it
    assert report.conforms, report.render()
    assert report.consistent
