"""Tests of repro.model.periods (hyper-period arithmetic)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.model.periods import (
    hyper_period,
    instances_in_hyper_period,
    is_harmonic_pair,
    is_harmonic_set,
    lcm,
    lcm_many,
    period_ratio,
    validate_period,
)


class TestValidatePeriod:
    def test_accepts_positive_integer(self):
        assert validate_period(7) == 7

    def test_rejects_zero(self):
        with pytest.raises(ModelError):
            validate_period(0)

    def test_rejects_negative(self):
        with pytest.raises(ModelError):
            validate_period(-3)

    def test_rejects_float(self):
        with pytest.raises(ModelError):
            validate_period(2.5)

    def test_rejects_bool(self):
        with pytest.raises(ModelError):
            validate_period(True)

    def test_error_mentions_owner(self):
        with pytest.raises(ModelError, match="sensor"):
            validate_period(-1, owner="sensor")


class TestLcm:
    def test_pair(self):
        assert lcm(4, 6) == 12

    def test_coprime(self):
        assert lcm(3, 7) == 21

    def test_identity(self):
        assert lcm(5, 5) == 5

    def test_rejects_non_positive(self):
        with pytest.raises(ModelError):
            lcm(0, 3)

    def test_many(self):
        assert lcm_many([3, 6, 12]) == 12

    def test_many_empty_rejected(self):
        with pytest.raises(ModelError):
            lcm_many([])

    def test_many_with_non_positive(self):
        with pytest.raises(ModelError):
            lcm_many([3, -6])

    @given(st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=6))
    def test_lcm_many_is_multiple_of_every_period(self, periods):
        value = lcm_many(periods)
        assert all(value % period == 0 for period in periods)

    @given(
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=1, max_value=100),
    )
    def test_lcm_commutative(self, a, b):
        assert lcm(a, b) == lcm(b, a)


class TestHyperPeriod:
    def test_paper_example_periods(self):
        assert hyper_period([3, 6, 6, 12, 12]) == 12

    def test_instance_count(self):
        assert instances_in_hyper_period(3, 12) == 4
        assert instances_in_hyper_period(12, 12) == 1

    def test_instance_count_rejects_non_divisor(self):
        with pytest.raises(ModelError):
            instances_in_hyper_period(5, 12)


class TestHarmonic:
    def test_harmonic_pair(self):
        assert is_harmonic_pair(3, 6)
        assert is_harmonic_pair(6, 3)
        assert is_harmonic_pair(4, 4)

    def test_non_harmonic_pair(self):
        assert not is_harmonic_pair(4, 6)

    def test_harmonic_set(self):
        assert is_harmonic_set([3, 6, 12, 24])
        assert not is_harmonic_set([3, 6, 8])

    def test_ratio_consumer_slower(self):
        assert period_ratio(3, 12) == (4, 1)

    def test_ratio_consumer_faster(self):
        assert period_ratio(12, 3) == (1, 4)

    def test_ratio_equal(self):
        assert period_ratio(6, 6) == (1, 1)

    def test_ratio_rejects_non_harmonic(self):
        with pytest.raises(ModelError):
            period_ratio(4, 6)

    @given(st.integers(1, 20), st.integers(1, 8))
    def test_ratio_round_trip(self, base, factor):
        items, reuse = period_ratio(base, base * factor)
        assert items == factor and reuse == 1
