"""Tests of repro.workloads (generators, spec, utilisation, periods)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.model.periods import is_harmonic_pair
from repro.workloads import (
    GraphShape,
    WorkloadSpec,
    fork_join,
    generate_many,
    generate_workload,
    harmonic_ladder,
    layered_dag,
    pipeline,
    rate_monotonic_layers,
    scheduled_workload,
    sensor_fusion,
    uunifast,
    uunifast_discard,
    wcet_from_utilization,
)
from repro.workloads.periods import assign_periods


class TestUtilization:
    @given(st.integers(1, 20), st.floats(0.1, 4.0))
    @settings(max_examples=40, deadline=None)
    def test_uunifast_sums_to_total(self, count, total):
        rng = np.random.default_rng(0)
        values = uunifast(count, total, rng)
        assert len(values) == count
        assert sum(values) == pytest.approx(total)
        assert all(value >= 0 for value in values)

    def test_uunifast_discard_caps_each_task(self):
        rng = np.random.default_rng(1)
        values = uunifast_discard(10, 3.0, rng, max_utilization=0.5)
        assert max(values) <= 0.5

    def test_uunifast_discard_impossible(self):
        rng = np.random.default_rng(1)
        with pytest.raises(WorkloadError):
            uunifast_discard(2, 3.0, rng, max_utilization=0.5)

    def test_uunifast_rejects_bad_args(self):
        rng = np.random.default_rng(1)
        with pytest.raises(WorkloadError):
            uunifast(0, 1.0, rng)

    def test_wcet_from_utilization_clamped(self):
        assert wcet_from_utilization(2.0, 10) == 10.0
        assert wcet_from_utilization(0.0, 10) == pytest.approx(0.05)
        assert wcet_from_utilization(0.333333, 10, decimals=2) == pytest.approx(3.33)


class TestPeriods:
    def test_harmonic_ladder(self):
        assert harmonic_ladder(5, 3) == [5, 10, 20]
        assert harmonic_ladder(3, 2, ratio=4) == [3, 12]

    def test_harmonic_ladder_rejects_bad_args(self):
        with pytest.raises(WorkloadError):
            harmonic_ladder(0, 3)
        with pytest.raises(WorkloadError):
            harmonic_ladder(5, 3, ratio=1)

    def test_rate_monotonic_layers(self):
        assert rate_monotonic_layers(3, 10) == [10, 20, 40]

    def test_assign_periods_draws_from_the_ladder(self):
        rng = np.random.default_rng(0)
        periods = assign_periods(50, [5, 10, 20], rng)
        assert set(periods) <= {5, 10, 20}
        assert len(periods) == 50

    def test_assign_periods_rejects_bad_weights(self):
        rng = np.random.default_rng(0)
        with pytest.raises(WorkloadError):
            assign_periods(5, [5, 10], rng, weights=[1.0])


class TestWorkloadSpec:
    def test_validation(self):
        WorkloadSpec().validate()
        with pytest.raises(WorkloadError):
            WorkloadSpec(task_count=0).validate()
        with pytest.raises(WorkloadError):
            WorkloadSpec(utilization=0.0).validate()
        with pytest.raises(WorkloadError):
            WorkloadSpec(memory_range=(5.0, 1.0)).validate()

    def test_architecture_from_spec(self):
        spec = WorkloadSpec(processor_count=3, memory_capacity=64.0, comm_latency=0.5)
        arch = spec.architecture()
        assert len(arch) == 3
        assert arch.memory_capacity == 64.0
        assert arch.comm.latency == 0.5

    def test_with_updates_and_label(self):
        spec = WorkloadSpec(seed=1).with_updates(seed=9)
        assert spec.seed == 9


@pytest.mark.parametrize("shape", list(GraphShape))
class TestGenerators:
    def test_generated_graph_is_valid(self, shape):
        spec = WorkloadSpec(task_count=24, processor_count=3, utilization=0.3, shape=shape, seed=5)
        workload = generate_workload(spec)
        graph = workload.graph
        graph.validate()
        assert len(graph) == 24
        # The per-task minimum WCET and rounding can push the total slightly
        # above the requested target, but never anywhere near the platform size.
        assert graph.total_utilization <= 0.3 * 3 * 1.2 + 0.2
        for dep in graph.dependences:
            assert is_harmonic_pair(graph.task(dep.producer).period, graph.task(dep.consumer).period)

    def test_generation_is_deterministic(self, shape):
        spec = WorkloadSpec(task_count=20, processor_count=2, shape=shape, seed=3)
        first = generate_workload(spec)
        second = generate_workload(spec)
        assert first.graph.task_names == second.graph.task_names
        assert [d.key for d in first.graph.dependences] == [d.key for d in second.graph.dependences]

    def test_describe(self, shape):
        spec = WorkloadSpec(task_count=20, processor_count=2, shape=shape, seed=3)
        workload = generate_workload(spec)
        assert "tasks" in workload.describe()
        assert workload.label


class TestSpecificShapes:
    def test_layered_every_non_source_has_a_producer(self):
        workload = layered_dag(WorkloadSpec(task_count=30, shape=GraphShape.LAYERED, seed=2))
        graph = workload.graph
        sources = set(graph.sources())
        for name in graph.task_names:
            if name not in sources:
                assert graph.predecessors(name)

    def test_pipeline_is_a_set_of_chains(self):
        workload = pipeline(WorkloadSpec(task_count=20, processor_count=4, seed=2), chains=4)
        graph = workload.graph
        assert all(len(graph.predecessors(n)) <= 1 for n in graph.task_names)

    def test_fork_join_structure(self):
        workload = fork_join(WorkloadSpec(task_count=16, processor_count=4, seed=2))
        graph = workload.graph
        assert "source" in graph and "join" in graph and "sink" in graph
        assert graph.predecessors("sink") == ("join",)

    def test_fork_join_too_small_rejected(self):
        with pytest.raises(WorkloadError):
            fork_join(WorkloadSpec(task_count=4, processor_count=4, seed=2))

    def test_sensor_fusion_structure(self):
        workload = sensor_fusion(WorkloadSpec(task_count=20, processor_count=4, seed=2), sensors=4)
        graph = workload.graph
        assert len(graph.predecessors("fusion")) == 4
        fusion_period = graph.task("fusion").period
        assert all(graph.task(f).period < fusion_period for f in graph.predecessors("fusion"))

    def test_sensor_fusion_too_small_rejected(self):
        with pytest.raises(WorkloadError):
            sensor_fusion(WorkloadSpec(task_count=5, seed=2), sensors=4)


class TestSeedDerivation:
    # Golden values: derive_seed is part of the persisted-artifact contract
    # (scenario grids pin their fingerprints on it), so its mapping must
    # never drift silently.
    GOLDEN_CHILDREN_OF_2008 = [2400879747, 374099828, 1868470949, 4175696046]

    def test_derive_seed_golden_values(self):
        from repro.workloads.seeding import derive_seed

        assert [derive_seed(2008, i) for i in range(4)] == self.GOLDEN_CHILDREN_OF_2008

    def test_derivation_is_stateless_and_order_independent(self):
        from repro.workloads.seeding import derive_seed, spawn_seeds

        # Deriving child 3 directly equals deriving it after 0..2 — there is
        # no hidden stream state a worker pool could consume out of order.
        assert derive_seed(2008, 3) == spawn_seeds(2008, 4)[3]
        assert [derive_seed(2008, i) for i in reversed(range(4))] == list(
            reversed(self.GOLDEN_CHILDREN_OF_2008)
        )

    def test_matches_numpy_spawn_semantics(self):
        import numpy as np

        from repro.workloads.seeding import derive_seed

        children = np.random.SeedSequence(2008).spawn(3)
        assert derive_seed(2008, 2) == int(
            children[2].generate_state(1, dtype=np.uint32)[0]
        )

    def test_roots_do_not_collide_trivially(self):
        from repro.workloads.seeding import derive_seed

        assert derive_seed(1, 0) != derive_seed(2, 0)
        assert derive_seed(1, 0) != derive_seed(1, 1)

    def test_streams_are_disjoint_namespaces(self):
        from repro.workloads.seeding import derive_seed, spawn_seeds

        # A streamed chain is addressed by a two-component spawn key, so it
        # can never replay the plain grid chain of the same root — whatever
        # the stream id — nor another stream.
        plain = spawn_seeds(2008, 8)
        streamed = spawn_seeds(2008, 8, stream=0)
        assert plain != streamed
        assert spawn_seeds(2008, 8, stream=1) != streamed
        # Streams stay pure functions of (root, stream, index).
        assert derive_seed(2008, 3, stream=7) == spawn_seeds(2008, 4, stream=7)[3]

    def test_malformed_keys_rejected_loudly(self):
        from repro.workloads.seeding import derive_seed, spawn_seeds

        with pytest.raises(WorkloadError, match="root_seed"):
            derive_seed(-1, 0)
        with pytest.raises(WorkloadError, match="index"):
            derive_seed(2008, -1)
        with pytest.raises(WorkloadError, match="stream"):
            derive_seed(2008, 0, stream=-5)
        with pytest.raises(WorkloadError, match="index"):
            derive_seed(2008, "three")
        with pytest.raises(WorkloadError, match="count"):
            spawn_seeds(2008, -2)


class TestHighLevelGeneration:
    def test_generate_many_uses_seeds(self):
        spec = WorkloadSpec(task_count=16, processor_count=2, shape=GraphShape.PIPELINE)
        workloads = generate_many(spec, [1, 2, 3])
        assert len(workloads) == 3
        assert {w.spec.seed for w in workloads} == {1, 2, 3}

    def test_generate_many_count_mode_derives_independent_seeds(self):
        from repro.workloads.seeding import spawn_seeds

        spec = WorkloadSpec(task_count=16, processor_count=2, shape=GraphShape.PIPELINE)
        workloads = generate_many(spec, count=3)
        assert [w.spec.seed for w in workloads] == spawn_seeds(spec.seed, 3)
        # Reproducible: the same grid regardless of how often it is generated.
        again = generate_many(spec, count=3)
        assert [w.spec.seed for w in again] == [w.spec.seed for w in workloads]

    def test_generate_many_rejects_ambiguous_arguments(self):
        spec = WorkloadSpec(task_count=16, processor_count=2, shape=GraphShape.PIPELINE)
        with pytest.raises(WorkloadError):
            generate_many(spec)
        with pytest.raises(WorkloadError):
            generate_many(spec, [1, 2], count=2)

    def test_generate_many_rejects_duplicate_seeds(self):
        # Duplicate explicit seeds would silently replay the same workload
        # twice — fail loudly, naming every offender.
        spec = WorkloadSpec(task_count=16, processor_count=2, shape=GraphShape.PIPELINE)
        with pytest.raises(WorkloadError, match=r"duplicate seed\(s\) \[2\]"):
            generate_many(spec, [1, 2, 2, 3])
        with pytest.raises(WorkloadError, match=r"\[1, 2\]"):
            generate_many(spec, [1, 1, 2, 2])

    def test_scheduled_workload_returns_feasible_schedule(self):
        from repro.scheduling import check_schedule

        spec = WorkloadSpec(task_count=18, processor_count=3, shape=GraphShape.PIPELINE, seed=4)
        _workload, schedule = scheduled_workload(spec)
        assert check_schedule(schedule).is_feasible
