"""Smoke tests of the benchmark entry points.

Every ``benchmarks/bench_e*.py`` exposes ``run(preset)`` (returning the
experiment's :class:`~repro.experiments.tables.ExperimentResult`) and a
``main()`` CLI.  These tests load each file the way ``python benchmarks/...``
would and execute it on the ``tiny`` preset, asserting a table comes out —
so a benchmark can never rot into an un-runnable state between campaigns.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro.experiments.tables import ExperimentResult

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
BENCH_FILES = sorted(BENCH_DIR.glob("bench_e*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_all_benchmarks_discovered() -> None:
    """One benchmark per experiment E1..E8."""
    assert len(BENCH_FILES) == 8


@pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.stem)
def test_benchmark_entry_point_produces_table(path: Path) -> None:
    module = _load(path)
    assert hasattr(module, "run"), f"{path.name} lacks a run(preset) entry point"
    result = module.run("tiny")
    assert isinstance(result, ExperimentResult)
    assert result.table.strip(), f"{path.name} produced an empty table"
    assert result.passed is not False, f"{path.name} failed on the tiny preset"
    # The rendered report must be printable (what main() writes to stdout).
    assert result.experiment in result.render()


@pytest.mark.parametrize("path", BENCH_FILES, ids=lambda p: p.stem)
def test_benchmark_main_exits_cleanly(path: Path, capsys) -> None:
    module = _load(path)
    assert module.main(["--preset", "tiny"]) == 0
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} main() printed nothing"
