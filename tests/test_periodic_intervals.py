"""Tests of repro.scheduling.periodic_intervals (circular interval arithmetic)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.scheduling.periodic_intervals import (
    EPSILON,
    circular_overlap,
    clearing_shift,
    pattern_offsets,
    patterns_conflict,
    split_wrapping,
)


class TestCircularOverlap:
    def test_plain_overlap(self):
        assert circular_overlap(0, 2, 1, 2, 10)

    def test_plain_disjoint(self):
        assert not circular_overlap(0, 2, 5, 2, 10)

    def test_wraparound_overlap(self):
        # [9, 11) wraps to [9,10)+[0,1); it overlaps [0, 0.5).
        assert circular_overlap(9, 2, 0, 0.5, 10)

    def test_wraparound_disjoint(self):
        assert not circular_overlap(9, 1, 0, 0.5, 10)

    def test_zero_length_never_overlaps(self):
        assert not circular_overlap(0, 0, 0, 5, 10)

    def test_full_period_overlaps_everything(self):
        assert circular_overlap(0, 10, 3, 1, 10)

    def test_rejects_bad_period(self):
        with pytest.raises(SchedulingError):
            circular_overlap(0, 1, 0, 1, 0)

    @given(
        st.floats(0, 100, allow_nan=False),
        st.floats(0.1, 5),
        st.floats(0, 100, allow_nan=False),
        st.floats(0.1, 5),
    )
    def test_symmetry(self, a, la, b, lb):
        period = 20
        assert circular_overlap(a, la, b, lb, period) == circular_overlap(b, lb, a, la, period)


class TestClearingShift:
    def test_no_overlap_means_zero(self):
        assert clearing_shift(0, 1, 5, 1, 10) == 0.0

    def test_shift_clears_conflict(self):
        shift = clearing_shift(0, 2, 1, 2, 10)
        assert shift > 0
        assert not circular_overlap(0 + shift, 2, 1, 2, 10)

    def test_impossible_separation_rejected(self):
        with pytest.raises(SchedulingError):
            clearing_shift(0, 6, 1, 6, 10)

    @given(
        st.floats(0, 30, allow_nan=False),
        st.floats(0.1, 4),
        st.floats(0, 30, allow_nan=False),
        st.floats(0.1, 4),
    )
    def test_shift_always_clears(self, a, la, b, lb):
        period = 12
        shift = clearing_shift(a, la, b, lb, period)
        assert shift >= 0
        assert not circular_overlap(a + shift, la, b, lb, period)


class TestPatternsAndSplitting:
    def test_pattern_offsets_strict_periodicity(self):
        # Period 3, 4 instances, hyper-period 12: offsets 5, 8, 11, 2.
        offsets = pattern_offsets(5.0, 3, 4, 12)
        assert offsets == [5.0, 8.0, 11.0, 2.0]

    def test_pattern_offsets_rejects_bad_args(self):
        with pytest.raises(SchedulingError):
            pattern_offsets(0, 0, 2, 12)
        with pytest.raises(SchedulingError):
            pattern_offsets(0, 3, -1, 12)

    def test_split_non_wrapping(self):
        assert split_wrapping(2, 3, 10) == [(2.0, 5.0)]

    def test_split_wrapping(self):
        pieces = split_wrapping(9, 2, 10)
        assert pieces == [(9.0, 10.0), (0.0, 1.0)]

    def test_split_zero_length(self):
        assert split_wrapping(3, 0, 10) == []

    def test_split_full_period(self):
        assert split_wrapping(3, 10, 10) == [(0.0, 10.0)]

    def test_patterns_conflict(self):
        assert patterns_conflict([(0, 2)], [(1, 2)], 10)
        assert not patterns_conflict([(0, 2)], [(5, 2)], 10)


class TestSplitWrappingBoundary:
    """Regression tests of the shared clamp/wrap rule at the period boundary.

    The rule (shared with circular_overlap via EPSILON): an interval crossing
    the boundary always wraps, and no emitted piece is shorter than EPSILON.
    Previously an interval ending within EPSILON *past* the period was
    clamped while one ending just beyond wrapped — two different rules within
    one epsilon of each other.
    """

    def test_end_within_epsilon_past_period_clamps(self):
        # The wrap sliver (length EPSILON/2) is below the resolution of the
        # overlap tests, so it is dropped, not emitted.
        pieces = split_wrapping(8.0, 2.0 + EPSILON / 2, 10.0)
        assert pieces == [(8.0, 10.0)]

    def test_end_beyond_epsilon_past_period_wraps(self):
        pieces = split_wrapping(8.0, 2.0 + 3 * EPSILON, 10.0)
        assert len(pieces) == 2
        assert pieces[0] == (8.0, 10.0)
        begin, end = pieces[1]
        assert begin == 0.0
        assert end == pytest.approx(3 * EPSILON)

    def test_sub_epsilon_head_piece_is_dropped_too(self):
        # Same rule on the other side of the boundary: a head piece shorter
        # than EPSILON never appears.
        pieces = split_wrapping(10.0 - EPSILON / 2, 3.0, 10.0)
        assert len(pieces) == 1
        begin, end = pieces[0]
        assert begin == 0.0
        assert end == pytest.approx(3.0 - EPSILON / 2)

    def test_exact_boundary_end_stays_single_piece(self):
        assert split_wrapping(8.0, 2.0, 10.0) == [(8.0, 10.0)]

    @given(
        st.floats(0, 30, allow_nan=False),
        st.floats(0, 12, allow_nan=False),
    )
    def test_pieces_follow_the_shared_rule(self, start, length):
        period = 10.0
        pieces = split_wrapping(start, length, period)
        # Every emitted piece is linear, inside [0, period], and longer than
        # EPSILON; the total measure matches the interval (capped at one
        # period) up to the sub-epsilon residue the rule may drop.
        total = 0.0
        for begin, end in pieces:
            assert 0.0 <= begin < end <= period
            assert end - begin > EPSILON
            total += end - begin
        expected = min(length, period) if length > EPSILON else 0.0
        assert total == pytest.approx(expected, abs=3 * EPSILON)

    @given(st.integers(1, 6), st.integers(0, 40))
    def test_strictly_periodic_task_never_self_conflicts(self, period_factor, start_times_ten):
        """The instances of one strictly periodic task never collide modulo the hyper-period."""
        period = 2 * period_factor
        hyper_period = 24
        if hyper_period % period:
            return
        count = hyper_period // period
        start = start_times_ten / 10.0
        wcet = min(1.0, period)
        offsets = pattern_offsets(start, period, count, hyper_period)
        pattern = [(offset, wcet) for offset in offsets]
        for i, (a, la) in enumerate(pattern):
            for b, lb in pattern[i + 1 :]:
                assert not circular_overlap(a, la, b, lb, hyper_period)
