"""Tests of repro.metrics."""

import pytest

from repro.core import balance_schedule
from repro.metrics import (
    ScheduleReport,
    communication_count,
    communication_delta,
    communications_by_medium,
    compare_schedules,
    critical_path_length,
    idle_fraction_by_processor,
    load_balance_index,
    load_imbalance,
    makespan_summary,
    max_memory,
    memory_imbalance,
    memory_summary,
    render_table,
    total_execution_time,
    total_gain,
)
from repro.workloads.paper_example import paper_architecture, paper_initial_schedule


class TestMakespanMetrics:
    def test_total_execution_time(self, paper_schedule):
        assert total_execution_time(paper_schedule) == pytest.approx(15.0)

    def test_total_gain(self, paper_schedule):
        balanced = balance_schedule(paper_schedule).balanced_schedule
        assert total_gain(paper_schedule, balanced) >= 0.0

    def test_critical_path_is_a_lower_bound(self, paper_schedule):
        lower = critical_path_length(paper_schedule.graph)
        assert lower <= paper_schedule.makespan
        with_comm = critical_path_length(paper_schedule.graph, paper_schedule.architecture)
        assert with_comm >= lower

    def test_makespan_summary(self, paper_schedule):
        summary = makespan_summary(paper_schedule)
        assert summary.normalized >= 1.0
        assert summary.parallel_lower_bound <= summary.makespan


class TestMemoryMetrics:
    def test_max_memory_and_imbalance(self, paper_schedule):
        assert max_memory(paper_schedule) == pytest.approx(16.0)
        assert memory_imbalance(paper_schedule) == pytest.approx(2.0)

    def test_memory_summary(self, paper_schedule):
        summary = memory_summary(paper_schedule)
        assert summary.maximum == pytest.approx(16.0)
        assert not summary.balanced
        assert summary.fits  # no capacity declared

    def test_capacity_violations(self, paper_graph):
        schedule = paper_initial_schedule(paper_graph, paper_architecture(memory_capacity=10.0))
        summary = memory_summary(schedule)
        assert "P1" in summary.violations
        assert not summary.fits

    def test_balancing_reduces_memory_imbalance(self, paper_schedule):
        balanced = balance_schedule(paper_schedule).balanced_schedule
        assert memory_imbalance(balanced) < memory_imbalance(paper_schedule)


class TestLoadMetrics:
    def test_load_imbalance_and_fairness(self, paper_schedule):
        assert load_imbalance(paper_schedule) >= 1.0
        assert 1.0 / 3 <= load_balance_index(paper_schedule) <= 1.0

    def test_idle_fraction_by_processor(self, paper_schedule):
        fractions = idle_fraction_by_processor(paper_schedule)
        assert set(fractions) == {"P1", "P2", "P3"}
        assert all(0.0 <= value <= 1.0 for value in fractions.values())


class TestCommunicationMetrics:
    def test_counts(self, paper_schedule):
        assert communication_count(paper_schedule) == 8
        assert communications_by_medium(paper_schedule) == {"Med": 8}

    def test_delta_after_balancing(self, paper_schedule):
        balanced = balance_schedule(paper_schedule).balanced_schedule
        delta = communication_delta(paper_schedule, balanced)
        assert delta.before_count == 8
        assert delta.suppressed >= 0 and delta.created >= 0


class TestReports:
    def test_schedule_report_and_table(self, paper_schedule):
        balanced = balance_schedule(paper_schedule).balanced_schedule
        table = compare_schedules(
            [ScheduleReport.of("before", paper_schedule), ScheduleReport.of("after", balanced)]
        )
        assert "before" in table and "after" in table
        assert "makespan" in table

    def test_render_table_alignment(self):
        table = render_table(["name", "value"], [["a", "1"], ["bb", "22"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned columns
