"""Tests of strict-JSON emission and atomic artifact writes (repro.jsonio)."""

from __future__ import annotations

import json
import math

import pytest

from repro import jsonio
from repro.api import PipelineConfig, RunResult
from repro.api.config import _spec_from_dict, _spec_to_dict
from repro.workloads.spec import WorkloadSpec


class TestSanitize:
    def test_non_finite_floats_become_null(self):
        payload = {
            "inf": math.inf,
            "ninf": -math.inf,
            "nan": math.nan,
            "fine": 1.5,
            "nested": [math.inf, {"deep": math.nan}],
            "ints": 7,
            "text": "x",
        }
        clean = jsonio.sanitize(payload)
        assert clean["inf"] is None
        assert clean["ninf"] is None
        assert clean["nan"] is None
        assert clean["fine"] == 1.5
        assert clean["nested"] == [None, {"deep": None}]
        assert clean["ints"] == 7 and clean["text"] == "x"

    def test_dumps_is_strict(self):
        text = jsonio.dumps({"m": math.inf})
        # parse_constant fires only on Infinity/-Infinity/NaN tokens: strict
        # output must never contain them.
        parsed = json.loads(text, parse_constant=pytest.fail)
        assert parsed == {"m": None}

    def test_tuples_serialise_as_lists(self):
        assert json.loads(jsonio.dumps({"t": (1, 2)})) == {"t": [1, 2]}


class TestAtomicWrite:
    def test_write_and_replace(self, tmp_path):
        target = tmp_path / "artifact.json"
        jsonio.write_json_atomic(target, {"v": 1})
        jsonio.write_json_atomic(target, {"v": 2})
        assert json.loads(target.read_text()) == {"v": 2}
        # No temp litter left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]

    def test_mode_matches_plain_writes(self, tmp_path):
        # mkstemp's 0600 must not leak through: artifacts stay as readable
        # as the Path.write_text files they replaced (umask-relative).
        import os

        umask = os.umask(0)
        os.umask(umask)
        target = jsonio.write_json_atomic(tmp_path / "artifact.json", {"v": 1})
        assert (target.stat().st_mode & 0o777) == 0o666 & ~umask

    def test_failed_write_leaves_no_temp_file(self, tmp_path):
        target = tmp_path / "artifact.json"
        with pytest.raises(TypeError):
            jsonio.write_json_atomic(target, {"bad": object()})
        assert list(tmp_path.iterdir()) == []


class TestInfeasibleRunResultRoundTrip:
    def _infeasible_result(self) -> RunResult:
        # An infeasible run whose metrics carry the non-finite values the old
        # allow_nan=True emission wrote as Infinity/NaN tokens.
        return RunResult(
            label="infeasible",
            config=PipelineConfig.synthetic(WorkloadSpec(task_count=4)).to_dict(),
            balancer="paper",
            feasible=False,
            violations=["processor 'P1': overlap"],
            metrics={
                "makespan_before": 10.0,
                "makespan_after": math.inf,
                "total_gain": -math.inf,
                "fit_error": math.nan,
            },
        )

    def test_round_trip_through_strict_json(self):
        result = self._infeasible_result()
        text = jsonio.dumps(result.to_dict())
        payload = json.loads(text, parse_constant=pytest.fail)
        rebuilt = RunResult.from_dict(payload)
        # The verdict lives in the explicit fields, not in the numbers.
        assert rebuilt.feasible is False
        assert rebuilt.violations == result.violations
        assert rebuilt.metrics["makespan_after"] is None
        assert rebuilt.metrics["fit_error"] is None
        assert rebuilt.metrics["makespan_before"] == 10.0

    def test_plain_dumps_would_have_emitted_non_standard_tokens(self):
        # Documents the bug being fixed: the default emission is non-standard.
        text = json.dumps(self._infeasible_result().to_dict())
        assert "Infinity" in text


class TestSpecCapacityRoundTrip:
    def test_unbounded_capacity_serialises_as_null(self):
        spec = WorkloadSpec()
        data = _spec_to_dict(spec)
        assert data["memory_capacity"] is None
        assert json.loads(jsonio.dumps(data), parse_constant=pytest.fail)
        assert _spec_from_dict(data) == spec

    def test_finite_capacity_is_preserved(self):
        spec = WorkloadSpec(memory_capacity=42.0)
        data = _spec_to_dict(spec)
        assert data["memory_capacity"] == 42.0
        assert _spec_from_dict(data) == spec

    def test_pipeline_config_echo_is_strict_json(self):
        config = PipelineConfig.synthetic(WorkloadSpec(task_count=4))
        text = jsonio.dumps(config.to_dict())
        rebuilt = PipelineConfig.from_dict(json.loads(text, parse_constant=pytest.fail))
        assert rebuilt == config
