"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.model import Architecture, CommunicationModel, TaskGraph
from repro.scheduling import schedule_application
from repro.workloads.paper_example import (
    paper_architecture,
    paper_initial_schedule,
    paper_task_graph,
)


@pytest.fixture()
def paper_graph() -> TaskGraph:
    """The task graph of the paper's worked example (Figure 2)."""
    return paper_task_graph()


@pytest.fixture()
def paper_arch() -> Architecture:
    """The 3-processor architecture of the worked example."""
    return paper_architecture()


@pytest.fixture()
def paper_schedule(paper_graph, paper_arch):
    """The Figure-3 initial schedule of the worked example."""
    return paper_initial_schedule(paper_graph, paper_arch)


@pytest.fixture()
def small_graph() -> TaskGraph:
    """A tiny two-rate producer/consumer chain used across unit tests."""
    graph = TaskGraph(name="small")
    graph.create_task("src", period=4, wcet=1.0, memory=2.0, data_size=1.0)
    graph.create_task("mid", period=4, wcet=1.0, memory=1.0, data_size=1.0)
    graph.create_task("sink", period=8, wcet=2.0, memory=3.0)
    graph.connect("src", "mid")
    graph.connect("mid", "sink")
    return graph


@pytest.fixture()
def small_arch() -> Architecture:
    """Two identical processors on a single bus with unit latency."""
    return Architecture.homogeneous(2, comm=CommunicationModel(latency=1.0))


@pytest.fixture()
def small_schedule(small_graph, small_arch):
    """A feasible initial schedule of the small chain."""
    return schedule_application(small_graph, small_arch)
