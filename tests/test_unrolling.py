"""Tests of repro.scheduling.unrolling (instance expansion)."""

from repro.scheduling.unrolling import (
    instance_count,
    instance_edges,
    predecessors_of_instance,
    successors_of_instance,
    unrolled_instances,
)


class TestUnrolledInstances:
    def test_counts(self, paper_graph):
        assert instance_count(paper_graph, "a") == 4
        assert instance_count(paper_graph, "d") == 1

    def test_all_instances(self, paper_graph):
        keys = unrolled_instances(paper_graph)
        assert len(keys) == 10
        assert ("a", 3) in keys and ("e", 0) in keys

    def test_deterministic_order(self, paper_graph):
        assert unrolled_instances(paper_graph) == unrolled_instances(paper_graph)


class TestInstanceEdges:
    def test_multirate_expansion(self, paper_graph):
        edges = instance_edges(paper_graph)
        # a->b: b has 2 instances needing 2 samples each = 4 edges
        ab = [e for e in edges if e.producer[0] == "a" and e.consumer[0] == "b"]
        assert len(ab) == 4
        assert {e.producer for e in ab} == {("a", 0), ("a", 1), ("a", 2), ("a", 3)}

    def test_same_period_edges(self, paper_graph):
        bc = [e for e in instance_edges(paper_graph) if e.producer[0] == "b" and e.consumer[0] == "c"]
        assert len(bc) == 2
        assert all(e.producer[1] == e.consumer[1] for e in bc)

    def test_predecessors_of_instance(self, paper_graph):
        edges = predecessors_of_instance(paper_graph, "b", 1)
        assert {e.producer for e in edges} == {("a", 2), ("a", 3)}

    def test_predecessors_of_source_is_empty(self, paper_graph):
        assert predecessors_of_instance(paper_graph, "a", 0) == ()

    def test_successors_of_instance(self, paper_graph):
        consumers = {e.consumer for e in successors_of_instance(paper_graph, "a", 0)}
        assert consumers == {("b", 0)}

    def test_edge_labels(self, paper_graph):
        edge = predecessors_of_instance(paper_graph, "b", 0)[0]
        assert "->" in edge.label

    def test_edges_and_predecessors_agree(self, paper_graph):
        edges = instance_edges(paper_graph)
        by_consumer = {}
        for edge in edges:
            by_consumer.setdefault(edge.consumer, set()).add(edge.producer)
        for (task, index), producers in by_consumer.items():
            direct = {e.producer for e in predecessors_of_instance(paper_graph, task, index)}
            assert direct == producers
