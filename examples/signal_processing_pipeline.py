#!/usr/bin/env python3
"""Software-radio style signal-processing pipelines and baseline comparison.

Signal processing is the second application domain the paper targets: chains
of filters where each downstream stage runs slower and consumes several
samples of its producer (decimation), so inter-processor buffers grow as in
Figure 1.  This example generates several parallel pipelines with the
workload generator, compares the paper's heuristic against the memory-blind
and assignment-level baselines, and shows the buffer occupancy measured by
the simulator.

Run it with ``python examples/signal_processing_pipeline.py``.
"""

from repro.baselines import ffd_memory_assignment, lpt_assignment
from repro.core import CostPolicy, LoadBalancer, LoadBalancerOptions
from repro.metrics import ScheduleReport, compare_schedules
from repro.scheduling import PlacementPolicy, SchedulerOptions, check_schedule
from repro.simulation import SimulationOptions, simulate
from repro.workloads import GraphShape, WorkloadSpec, scheduled_workload


def main() -> None:
    spec = WorkloadSpec(
        task_count=32,
        processor_count=4,
        utilization=0.35,
        shape=GraphShape.PIPELINE,
        base_period=8,
        period_levels=3,
        memory_range=(2.0, 12.0),
        seed=42,
        label="software-radio",
    )
    workload, initial = scheduled_workload(
        spec, SchedulerOptions(policy=PlacementPolicy.LEAST_LOADED)
    )
    print(workload.describe())

    strategies = {"initial": initial}
    for name, policy in (
        ("proposed (ratio)", CostPolicy.RATIO),
        ("load-only", CostPolicy.LOAD_ONLY),
        ("memory-only", CostPolicy.MEMORY_ONLY),
    ):
        strategies[name] = LoadBalancer(
            initial, LoadBalancerOptions(policy=policy)
        ).run().balanced_schedule
    strategies["LPT assignment"] = lpt_assignment(initial).schedule
    strategies["FFD memory packing"] = ffd_memory_assignment(initial).schedule

    print()
    print(compare_schedules(
        [ScheduleReport.of(name, schedule) for name, schedule in strategies.items()]
    ))

    print("\nconstraint check (the assignment-level baselines ignore timing):")
    for name, schedule in strategies.items():
        report = check_schedule(schedule, check_memory=False)
        status = "feasible" if report.is_feasible else f"{len(report.all_violations)} violations"
        print(f"  {name:22s} {status}")

    balanced = strategies["proposed (ratio)"]
    simulation = simulate(balanced, SimulationOptions(hyper_periods=2))
    print("\nmulti-rate buffer peaks on the balanced schedule (Figure-1 effect):")
    for name, peak in sorted(simulation.memory.peak_buffers().items()):
        print(f"  {name}: {peak:g} units buffered at peak")
    print()
    print(simulation.trace.gantt(width=64))


if __name__ == "__main__":
    main()
