#!/usr/bin/env python3
"""Software-radio style signal-processing pipelines and baseline comparison.

Signal processing is the second application domain the paper targets: chains
of filters where each downstream stage runs slower and consumes several
samples of its producer (decimation), so inter-processor buffers grow as in
Figure 1.  This example generates several parallel pipelines with the
workload generator, compares the paper's heuristic against the memory-blind
and assignment-level baselines, and shows the buffer occupancy measured by
the simulator.

Run it with ``python examples/signal_processing_pipeline.py``.
"""

from repro.api import PlacementPolicy, SchedulerOptions, balance
from repro.metrics import ScheduleReport, compare_schedules
from repro.simulation import SimulationOptions, simulate
from repro.workloads import GraphShape, WorkloadSpec, scheduled_workload


def main() -> None:
    spec = WorkloadSpec(
        task_count=32,
        processor_count=4,
        utilization=0.35,
        shape=GraphShape.PIPELINE,
        base_period=8,
        period_levels=3,
        memory_range=(2.0, 12.0),
        seed=42,
        label="software-radio",
    )
    workload, initial = scheduled_workload(
        spec, SchedulerOptions(policy=PlacementPolicy.LEAST_LOADED)
    )
    print(workload.describe())

    # Every strategy — the paper heuristic under several cost policies and the
    # assignment-level baselines — runs through the one registry entry point.
    outcomes = {
        name: balance(initial, key, **params)
        for name, key, params in (
            ("initial", "no_balancing", {}),
            ("proposed (ratio)", "paper", {"policy": "ratio"}),
            ("load-only", "paper", {"policy": "load_only"}),
            ("memory-only", "paper", {"policy": "memory_only"}),
            ("LPT assignment", "greedy_load", {}),
            ("FFD memory packing", "bin_packing", {}),
        )
    }

    print()
    print(compare_schedules(
        [ScheduleReport.of(name, outcome.schedule) for name, outcome in outcomes.items()]
    ))

    print("\nconstraint check (the assignment-level baselines ignore timing):")
    for name, outcome in outcomes.items():
        # Every outcome carries the same uniform verdict — no per-strategy
        # re-verification needed.
        status = "feasible" if outcome.feasible else f"{len(outcome.violations)} violations"
        print(f"  {name:22s} {status}")

    balanced = outcomes["proposed (ratio)"].schedule
    simulation = simulate(balanced, SimulationOptions(hyper_periods=2))
    print("\nmulti-rate buffer peaks on the balanced schedule (Figure-1 effect):")
    for name, peak in sorted(simulation.memory.peak_buffers().items()):
        print(f"  {name}: {peak:g} units buffered at peak")
    print()
    print(simulation.trace.gantt(width=64))


if __name__ == "__main__":
    main()
