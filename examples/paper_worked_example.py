#!/usr/bin/env python3
"""Replay the paper's worked example (Figures 2-4, section 3.3) step by step.

The script prints, for each of the seven blocks, the cost-function values on
every processor and the chosen move — mirroring the enumerated steps of
section 3.3 — then compares the final figures with the paper's (total
execution time 15 -> 14, memory [16, 4, 4] -> [10, 6, 8]).

Run it with ``python examples/paper_worked_example.py``.
"""

from repro.api import CostPolicy
from repro.core import LoadBalancer, LoadBalancerOptions
from repro.workloads.paper_example import (
    PAPER_EXPECTATIONS,
    paper_initial_schedule,
    paper_task_graph,
)


def main() -> None:
    graph = paper_task_graph()
    schedule = paper_initial_schedule(graph)

    print("Application (Figure 2 reconstruction):")
    for task in graph:
        print(f"  {task.name}: T={task.period}, E={task.wcet:g}, m={task.memory:g}")
    for dep in graph.dependences:
        print(f"  {dep}")

    print("\nInitial schedule (Figure 3):")
    print(schedule.describe())
    print(f"  total execution time: {schedule.makespan:g} "
          f"(paper: {PAPER_EXPECTATIONS['makespan_before']})")

    result = LoadBalancer(
        schedule, LoadBalancerOptions(policy=CostPolicy.LEXICOGRAPHIC)
    ).run()

    print("\nBlock moves (section 3.3):")
    for step, decision in enumerate(result.decisions, start=1):
        expected_label, expected_processor = PAPER_EXPECTATIONS["decisions"][step - 1]
        match = (
            decision.block.label == expected_label
            and decision.chosen_processor == expected_processor
        )
        print(f"step {step} {'(matches paper)' if match else '(DIFFERS from paper)'}:")
        print(decision.describe())
        print()

    print("Balanced schedule (Figure 4):")
    print(result.balanced_schedule.describe())
    print()
    print(result.summary())
    print(f"\npaper expected memory after balancing: {PAPER_EXPECTATIONS['memory_after']}")
    print(f"paper expected total execution time:   {PAPER_EXPECTATIONS['makespan_after']}")


if __name__ == "__main__":
    main()
