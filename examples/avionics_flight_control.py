#!/usr/bin/env python3
"""Avionics-style multi-rate flight control workload.

The paper motivates its heuristic with avionics and automatic-control
applications: a small number of sensors impose a small number of harmonic
periods, processing chains slow down as data flows towards the control
surfaces, and every processor has a limited data memory.  This example builds
a representative flight-control application (inertial sensors at 5 ms, air
data at 10 ms, guidance at 20 ms, actuation at 40 ms), schedules it on four
flight-control computers, balances it, and checks that the limited memories
are respected before and after balancing.

Run it with ``python examples/avionics_flight_control.py``.
"""

from repro import Architecture, CommunicationModel, TaskGraph, validate_problem
from repro.api import Pipeline, PipelineConfig
from repro.metrics import capacity_violations
from repro.simulation import SimulationOptions, simulate


def build_flight_control() -> TaskGraph:
    """Inertial / air-data sensing -> filtering -> guidance -> actuation."""
    graph = TaskGraph(name="flight-control")
    # 5 ms rate group: inertial sensing and filtering.
    for axis in ("x", "y", "z"):
        graph.create_task(f"gyro_{axis}", period=5, wcet=0.4, memory=2.0, data_size=0.5)
        graph.create_task(f"accel_{axis}", period=5, wcet=0.4, memory=2.0, data_size=0.5)
        graph.create_task(f"imu_filter_{axis}", period=5, wcet=0.8, memory=4.0, data_size=1.0)
        graph.connect(f"gyro_{axis}", f"imu_filter_{axis}")
        graph.connect(f"accel_{axis}", f"imu_filter_{axis}")
    # 10 ms rate group: air data and attitude estimation (consumes 2 IMU samples).
    graph.create_task("pitot", period=10, wcet=0.6, memory=3.0, data_size=0.5)
    graph.create_task("static_port", period=10, wcet=0.6, memory=3.0, data_size=0.5)
    graph.create_task("air_data", period=10, wcet=1.2, memory=5.0, data_size=1.0)
    graph.connect("pitot", "air_data")
    graph.connect("static_port", "air_data")
    graph.create_task("attitude", period=10, wcet=1.6, memory=8.0, data_size=2.0)
    for axis in ("x", "y", "z"):
        graph.connect(f"imu_filter_{axis}", "attitude")
    # 20 ms rate group: guidance and control laws.
    graph.create_task("guidance", period=20, wcet=2.5, memory=10.0, data_size=2.0)
    graph.connect("attitude", "guidance")
    graph.connect("air_data", "guidance")
    graph.create_task("control_laws", period=20, wcet=2.0, memory=8.0, data_size=1.5)
    graph.connect("guidance", "control_laws")
    # 40 ms rate group: surface actuation and telemetry.
    for surface in ("aileron", "elevator", "rudder"):
        graph.create_task(f"act_{surface}", period=40, wcet=1.0, memory=3.0)
        graph.connect("control_laws", f"act_{surface}")
    graph.create_task("telemetry", period=40, wcet=1.5, memory=6.0)
    graph.connect("attitude", "telemetry")
    graph.validate()
    return graph


def main() -> None:
    graph = build_flight_control()
    architecture = Architecture.homogeneous(
        4, memory_capacity=60.0, comm=CommunicationModel(latency=0.5), name="fcc-quad"
    )

    report = validate_problem(graph, architecture)
    print(report.summary())
    print(
        f"\n{len(graph)} tasks, {len(graph.dependences)} dependences, "
        f"hyper-period {graph.hyper_period} ms, utilisation {graph.total_utilization:.2f}"
    )

    # One declarative pipeline: naive load-spreading initial schedule
    # (feasible, but memory-oblivious), the paper heuristic, verification
    # including the per-FCC memory capacities, and the comparison report.
    config = PipelineConfig.from_dict({
        "schema": "repro-pipeline/1",
        "label": "flight-control",
        "workload": {"kind": "provided"},
        "schedule": {"policy": "least_loaded"},
        "balance": {"balancer": "paper", "params": {"policy": "ratio"}},
        "verify": {"enabled": True, "check_memory": True},
        "report": {"describe_workload": False, "compare": True},
    })
    result = Pipeline(config, graph=graph, architecture=architecture).run()

    print("\n" + result.report)
    print(
        "\nmemory-capacity violations before balancing:",
        capacity_violations(result.initial_schedule) or "none",
    )
    print(
        "memory-capacity violations after balancing: ",
        capacity_violations(result.balanced_schedule) or "none",
    )

    print(f"\nbalanced schedule feasible: {result.feasible}")

    simulation = simulate(result.balanced_schedule, SimulationOptions(hyper_periods=2))
    print("\nsimulated peak memory (static + multi-rate buffers):")
    for name, peak in sorted(simulation.peak_memory().items()):
        print(f"  {name}: {peak:g} / {architecture.memory_capacity:g}")


if __name__ == "__main__":
    main()
