#!/usr/bin/env python3
"""Quickstart: model a small multi-rate application and run it through the
unified ``repro.api`` pipeline.

This example walks through the whole public API in ~60 lines:

1. describe a strictly periodic multi-rate task graph and a homogeneous
   architecture;
2. declare a :class:`~repro.api.PipelineConfig` — initial scheduling,
   balancing strategy, verification and reporting as plain data (the same
   schema ``repro-lb run --config`` executes from JSON);
3. run the :class:`~repro.api.Pipeline` and read the structured
   :class:`~repro.api.RunResult` (metrics, trace, timings, rendered report);
4. replay the balanced schedule in the discrete-event simulator.

Run it with ``python examples/quickstart.py``.
"""

import json

from repro import Architecture, CommunicationModel, TaskGraph
from repro.api import Pipeline, PipelineConfig
from repro.simulation import SimulationOptions, simulate


def build_application() -> TaskGraph:
    """A small sensor -> filter -> fusion -> actuator application."""
    graph = TaskGraph(name="quickstart")
    # Two sensors sampled every 5 time units, their filters at the same rate,
    # a fusion stage twice as slow (it consumes two samples per filter run,
    # the Figure-1 situation of the paper) and an actuator at the slowest rate.
    graph.create_task("gyro", period=5, wcet=1.0, memory=2.0, data_size=1.0)
    graph.create_task("accel", period=5, wcet=1.0, memory=2.0, data_size=1.0)
    graph.create_task("filter_gyro", period=5, wcet=1.5, memory=3.0)
    graph.create_task("filter_accel", period=5, wcet=1.5, memory=3.0)
    graph.create_task("fusion", period=10, wcet=2.0, memory=6.0)
    graph.create_task("actuator", period=20, wcet=1.0, memory=2.0)
    graph.connect("gyro", "filter_gyro")
    graph.connect("accel", "filter_accel")
    graph.connect("filter_gyro", "fusion")
    graph.connect("filter_accel", "fusion")
    graph.connect("fusion", "actuator")
    graph.validate()
    return graph


def main() -> None:
    graph = build_application()
    architecture = Architecture.homogeneous(
        3, memory_capacity=40.0, comm=CommunicationModel(latency=1.0)
    )
    print(f"application: {len(graph)} tasks, hyper-period {graph.hyper_period}, "
          f"utilisation {graph.total_utilization:.2f}")

    # 1. one declarative config covers scheduling, balancing, verification and
    #    reporting; dump it to see the exact JSON `repro-lb run` accepts.
    config = PipelineConfig.from_dict({
        "schema": "repro-pipeline/1",
        "label": "quickstart",
        "workload": {"kind": "provided"},
        "schedule": {"policy": "least_loaded"},
        "balance": {"balancer": "paper", "params": {"policy": "ratio"}},
        "verify": {"enabled": True},
        "report": {"show_schedules": True, "compare": True},
    })
    print("\npipeline config:")
    print(json.dumps(config.to_dict(), indent=2))

    # 2. run the pipeline on the in-memory problem
    result = Pipeline(config, graph=graph, architecture=architecture).run()
    print()
    print(result.report)

    # 3. the same run as a structured artifact
    print(f"\nfeasible: {result.feasible}")
    print(f"metrics: makespan {result.metrics['makespan_before']:g} -> "
          f"{result.metrics['makespan_after']:g}, "
          f"max memory {result.metrics['max_memory_after']:g}, "
          f"{result.metrics['moves']} block move(s)")
    print(f"stages timed: {sorted(result.timings)}")

    # 4. replay in the discrete-event simulator (two hyper-periods)
    simulation = simulate(result.balanced_schedule, SimulationOptions(hyper_periods=2))
    print("\nsimulation:")
    print(simulation.summary())
    print()
    print(simulation.trace.gantt(width=64))


if __name__ == "__main__":
    main()
