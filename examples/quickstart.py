#!/usr/bin/env python3
"""Quickstart: model a small multi-rate application, schedule it and balance it.

This example walks through the whole public API in ~60 lines:

1. describe a strictly periodic multi-rate task graph and a homogeneous
   architecture;
2. run the initial distributed scheduling heuristic (the stand-in for the
   paper's reference [4]);
3. run the load-balancing heuristic with efficient memory usage (the paper's
   contribution);
4. verify the result and replay it in the discrete-event simulator.

Run it with ``python examples/quickstart.py``.
"""

from repro import (
    Architecture,
    CommunicationModel,
    LoadBalancer,
    LoadBalancerOptions,
    TaskGraph,
    check_schedule,
    schedule_application,
)
from repro.metrics import ScheduleReport, compare_schedules
from repro.simulation import SimulationOptions, simulate


def build_application() -> TaskGraph:
    """A small sensor -> filter -> fusion -> actuator application."""
    graph = TaskGraph(name="quickstart")
    # Two sensors sampled every 5 time units, their filters at the same rate,
    # a fusion stage twice as slow (it consumes two samples per filter run,
    # the Figure-1 situation of the paper) and an actuator at the slowest rate.
    graph.create_task("gyro", period=5, wcet=1.0, memory=2.0, data_size=1.0)
    graph.create_task("accel", period=5, wcet=1.0, memory=2.0, data_size=1.0)
    graph.create_task("filter_gyro", period=5, wcet=1.5, memory=3.0)
    graph.create_task("filter_accel", period=5, wcet=1.5, memory=3.0)
    graph.create_task("fusion", period=10, wcet=2.0, memory=6.0)
    graph.create_task("actuator", period=20, wcet=1.0, memory=2.0)
    graph.connect("gyro", "filter_gyro")
    graph.connect("accel", "filter_accel")
    graph.connect("filter_gyro", "fusion")
    graph.connect("filter_accel", "fusion")
    graph.connect("fusion", "actuator")
    graph.validate()
    return graph


def main() -> None:
    graph = build_application()
    architecture = Architecture.homogeneous(
        3, memory_capacity=40.0, comm=CommunicationModel(latency=1.0)
    )
    print(f"application: {len(graph)} tasks, hyper-period {graph.hyper_period}, "
          f"utilisation {graph.total_utilization:.2f}")

    # 1. initial schedule (feasibility only, no balancing)
    initial = schedule_application(graph, architecture)
    print("\ninitial schedule:")
    print(initial.describe())

    # 2. load balancing with efficient memory usage
    result = LoadBalancer(initial, LoadBalancerOptions()).run()
    print("\nload balancing:")
    print(result.summary())
    print("\nbalanced schedule:")
    print(result.balanced_schedule.describe())

    # 3. verification + side-by-side metrics
    report = check_schedule(result.balanced_schedule)
    print(f"\nbalanced schedule feasible: {report.is_feasible}")
    print()
    print(
        compare_schedules(
            [
                ScheduleReport.of("initial", initial),
                ScheduleReport.of("balanced", result.balanced_schedule),
            ]
        )
    )

    # 4. replay in the discrete-event simulator (two hyper-periods)
    simulation = simulate(result.balanced_schedule, SimulationOptions(hyper_periods=2))
    print("\nsimulation:")
    print(simulation.summary())
    print()
    print(simulation.trace.gantt(width=64))


if __name__ == "__main__":
    main()
