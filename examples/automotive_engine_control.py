#!/usr/bin/env python3
"""Automotive engine-management workload with tight per-ECU memories.

Automotive control is the third application domain named by the paper.  This
example models an engine-management application (crank-synchronous sensing,
knock detection, fuel/ignition control, slower thermal management and OBD
diagnostics) on three identical ECUs whose data memory is deliberately tight,
then shows what each strategy does to the memory hot-spot:

* the initial schedule concentrates the crank-rate chain on one ECU and
  overflows its memory;
* the paper's heuristic spreads the blocks and removes the overflow while
  keeping every dependence and strict-periodicity constraint;
* the memory-blind load-only policy balances execution time but leaves a
  larger memory hot-spot.

Run it with ``python examples/automotive_engine_control.py``.
"""

from repro import Architecture, CommunicationModel, TaskGraph, schedule_application
from repro.api import PlacementPolicy, SchedulerOptions, balance
from repro.metrics import ScheduleReport, capacity_violations, compare_schedules


def build_engine_management() -> TaskGraph:
    """Crank-synchronous sensing -> control, plus slower thermal/diagnostic rates."""
    graph = TaskGraph(name="engine-management")
    # 2 ms crank-synchronous group.
    graph.create_task("crank_sensor", period=2, wcet=0.3, memory=2.0, data_size=0.5)
    graph.create_task("cam_sensor", period=2, wcet=0.3, memory=2.0, data_size=0.5)
    graph.create_task("knock_adc", period=2, wcet=0.4, memory=4.0, data_size=1.0)
    graph.create_task("angle_sync", period=2, wcet=0.5, memory=5.0, data_size=1.0)
    graph.connect("crank_sensor", "angle_sync")
    graph.connect("cam_sensor", "angle_sync")
    # 4 ms combustion-control group (consumes 2 crank-rate samples per run).
    graph.create_task("knock_filter", period=4, wcet=0.9, memory=8.0, data_size=1.5)
    graph.connect("knock_adc", "knock_filter")
    graph.create_task("fuel_calc", period=4, wcet=1.0, memory=7.0, data_size=1.0)
    graph.create_task("ignition_calc", period=4, wcet=1.0, memory=7.0, data_size=1.0)
    graph.connect("angle_sync", "fuel_calc")
    graph.connect("angle_sync", "ignition_calc")
    graph.connect("knock_filter", "ignition_calc")
    graph.create_task("injector_out", period=4, wcet=0.5, memory=3.0)
    graph.create_task("coil_out", period=4, wcet=0.5, memory=3.0)
    graph.connect("fuel_calc", "injector_out")
    graph.connect("ignition_calc", "coil_out")
    # 8 ms thermal / lambda regulation.
    graph.create_task("lambda_probe", period=8, wcet=0.6, memory=3.0, data_size=0.5)
    graph.create_task("mixture_trim", period=8, wcet=1.2, memory=6.0, data_size=1.0)
    graph.connect("lambda_probe", "mixture_trim")
    graph.connect("angle_sync", "mixture_trim")
    graph.connect("mixture_trim", "fuel_calc")
    # 16 ms diagnostics.
    graph.create_task("obd_logger", period=16, wcet=1.5, memory=9.0)
    graph.connect("knock_filter", "obd_logger")
    graph.connect("mixture_trim", "obd_logger")
    graph.validate()
    return graph


def main() -> None:
    graph = build_engine_management()
    architecture = Architecture.homogeneous(
        3, memory_capacity=55.0, comm=CommunicationModel(latency=0.2), name="ecu-trio"
    )
    print(
        f"{len(graph)} tasks, {len(graph.dependences)} dependences, hyper-period "
        f"{graph.hyper_period} ms, utilisation {graph.total_utilization:.2f}, "
        f"total memory per hyper-period {graph.total_memory_per_hyper_period():g} "
        f"(capacity {architecture.memory_capacity:g} per ECU)"
    )

    initial = schedule_application(
        graph, architecture, SchedulerOptions(policy=PlacementPolicy.GROUP_WITH_PREDECESSORS)
    )
    # The registry runs the heuristic under every compared cost policy; each
    # outcome carries its own feasibility verdict and per-ECU memory map.
    outcomes = {
        label: balance(initial, "paper", policy=policy)
        for label, policy in (
            ("proposed", "ratio"),
            ("load-only (memory-blind)", "load_only"),
            ("memory-only", "memory_only"),
        )
    }
    outcomes = {"initial": balance(initial, "no_balancing"), **outcomes}

    print()
    print(compare_schedules(
        [ScheduleReport.of(label, outcome.schedule) for label, outcome in outcomes.items()]
    ))
    print("\nper-ECU memory and capacity overflows:")
    for label, outcome in outcomes.items():
        usage = ", ".join(f"{k}: {v:g}" for k, v in sorted(outcome.memory_by_processor.items()))
        overflow = capacity_violations(outcome.schedule)
        print(
            f"  {label:26s} [{usage}]  overflows={overflow or 'none'}  "
            f"feasible={outcome.feasible}"
        )


if __name__ == "__main__":
    main()
