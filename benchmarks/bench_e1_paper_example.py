"""E1 — regenerate the paper's worked example (Figures 2-4, section 3.3).

Paper artefact: the only end-to-end result in the paper — total execution
time 15 -> 14 and per-processor memory [16, 4, 4] -> [10, 6, 8] on three
processors, obtained through seven block moves.

The benchmark times the load-balancing heuristic on the example and prints
the paper-vs-measured table produced by
:func:`repro.experiments.run_e1_paper_example`.
"""

from repro.core import CostPolicy, LoadBalancer, LoadBalancerOptions
from repro.experiments import run_e1_paper_example
from repro.workloads.paper_example import paper_initial_schedule


def test_e1_paper_example(benchmark, capsys):
    """Reproduce figures 2-4 exactly and time the heuristic on the example."""
    schedule = paper_initial_schedule()
    options = LoadBalancerOptions(policy=CostPolicy.LEXICOGRAPHIC)

    benchmark(lambda: LoadBalancer(schedule, options).run())

    result = run_e1_paper_example()
    with capsys.disabled():
        print()
        print(result.render())
    assert result.passed, "the worked example was not reproduced exactly"


def run(preset: str = "quick"):
    """Regenerate the E1 artefact; the preset is accepted for CLI uniformity but ignored (the worked example has a single fixed configuration)."""
    return run_e1_paper_example()


def main(argv=None) -> int:
    """Entry point: ``python benchmarks/bench_e1_paper_example.py [--preset tiny|quick|full]``."""
    from repro.experiments.configs import preset_cli

    return preset_cli(run, "regenerate the paper's worked example (E1; preset is ignored)", argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
