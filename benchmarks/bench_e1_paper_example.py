"""E1 — regenerate the paper's worked example (Figures 2-4, section 3.3).

Paper artefact: the only end-to-end result in the paper — total execution
time 15 -> 14 and per-processor memory [16, 4, 4] -> [10, 6, 8] on three
processors, obtained through seven block moves.

``run(preset)`` regenerates the artefact (the preset is accepted for CLI
uniformity but ignored: the worked example has a single fixed
configuration); timing, repeats and ``BENCH_*.json`` artifacts live in the
shared harness (``repro-lb bench run``).
"""

from repro.bench import bench_script

run, main = bench_script("E1")

if __name__ == "__main__":
    import sys

    sys.exit(main())
