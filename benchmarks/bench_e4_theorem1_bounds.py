"""E4 — validate Theorem 1 empirically: ``0 <= G_total <= γ(M-1)!``.

Paper artefact: Theorem 1 (section 5.1) bounds the total-execution-time gain
of the heuristic.  The gating criterion is the theorem's substantive claim
(the gain is never negative), while upper-bound violations are reported as a
reproduction finding (see DESIGN.md §2, A5).

``run(preset)`` regenerates the artefact at an experiment preset; timing,
repeats and ``BENCH_*.json`` artifacts live in the shared harness
(``repro-lb bench run``).
"""

from repro.bench import bench_script

run, main = bench_script("E4")

if __name__ == "__main__":
    import sys

    sys.exit(main())
