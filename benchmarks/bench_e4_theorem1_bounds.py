"""E4 — validate Theorem 1 empirically: ``0 <= G_total <= γ(M-1)!``.

Paper artefact: Theorem 1 (section 5.1) bounds the total-execution-time gain
of the heuristic.  The benchmark times one balancing run of the campaign's
workload and prints the per-M gain statistics and bound checks; the gating
criterion is the theorem's substantive claim (the gain is never negative),
while upper-bound violations are reported as a reproduction finding (see
DESIGN.md §2, A5).
"""

from repro.core import LoadBalancer
from repro.experiments import Theorem1Config, run_e4_theorem1
from repro.workloads import GraphShape, WorkloadSpec, scheduled_workload
from repro.scheduling import PlacementPolicy, SchedulerOptions


def test_e4_theorem1_bounds(benchmark, capsys):
    """G_total is never negative over the random-workload campaign."""
    spec = WorkloadSpec(task_count=24, processor_count=3, utilization=0.3,
                        shape=GraphShape.PIPELINE, seed=1, label="bench-e4")
    _workload, schedule = scheduled_workload(
        spec, SchedulerOptions(policy=PlacementPolicy.LEAST_LOADED)
    )

    benchmark(lambda: LoadBalancer(schedule).run())

    result = run_e4_theorem1(Theorem1Config.quick())
    with capsys.disabled():
        print()
        print(result.render())
    assert result.passed, "a balancing run increased the total execution time"


def run(preset: str = "quick"):
    """Regenerate the E4 artefact at the given preset ("tiny", "quick" or "full")."""
    return run_e4_theorem1(Theorem1Config.from_preset(preset))


def main(argv=None) -> int:
    """Entry point: ``python benchmarks/bench_e4_theorem1_bounds.py [--preset tiny|quick|full]``."""
    from repro.experiments.configs import preset_cli

    return preset_cli(run, "validate Theorem 1 bounds (E4)", argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
