"""E6 — proposed heuristic versus baselines.

Paper artefact: the motivation of sections 1-2 — balancing reduces the total
execution time and spreads the memory demand, whereas memory-blind balancing
overflows the limited memories of embedded processors and unconstrained
(bin-packing / genetic) assignments break the dependence and strict
periodicity constraints altogether.

``run(preset)`` regenerates the artefact at an experiment preset; timing,
repeats and ``BENCH_*.json`` artifacts live in the shared harness
(``repro-lb bench run``).
"""

from repro.bench import bench_script

run, main = bench_script("E6")

if __name__ == "__main__":
    import sys

    sys.exit(main())
