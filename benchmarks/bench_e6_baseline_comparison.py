"""E6 — proposed heuristic versus baselines.

Paper artefact: the motivation of sections 1-2 — balancing reduces the total
execution time and spreads the memory demand, whereas memory-blind balancing
overflows the limited memories of embedded processors and unconstrained
(bin-packing / genetic) assignments break the dependence and strict
periodicity constraints altogether.

The benchmark times the full strategy sweep on one workload and prints the
averaged comparison table over the seed sweep.
"""

from repro.experiments import ComparisonConfig, run_e6_baseline_comparison
from repro.experiments.runner import _strategy_outcomes
from repro.scheduling import PlacementPolicy, SchedulerOptions
from repro.workloads import scheduled_workload


def test_e6_baseline_comparison(benchmark, capsys):
    """The proposed heuristic balances while keeping the schedule feasible."""
    config = ComparisonConfig.quick()
    _workload, schedule = scheduled_workload(
        config.spec.with_updates(seed=0),
        SchedulerOptions(policy=PlacementPolicy.LEAST_LOADED),
    )

    benchmark(lambda: _strategy_outcomes(schedule))

    result = run_e6_baseline_comparison(config)
    with capsys.disabled():
        print()
        print(result.render())
    assert result.passed is not False, "the proposed heuristic lost feasibility too often"


def run(preset: str = "quick"):
    """Regenerate the E6 artefact at the given preset ("tiny", "quick" or "full")."""
    return run_e6_baseline_comparison(ComparisonConfig.from_preset(preset))


def main(argv=None) -> int:
    """Entry point: ``python benchmarks/bench_e6_baseline_comparison.py [--preset tiny|quick|full]``."""
    from repro.experiments.configs import preset_cli

    return preset_cli(run, "compare against the baselines (E6)", argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
