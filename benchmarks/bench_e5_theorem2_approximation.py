"""E5 — validate Theorem 2 empirically: the memory-only rule is (2 - 1/M)-approximate.

Paper artefact: Theorem 2 (section 5.2) proves that, when only memory is
considered, the greedy "least loaded memory first" rule stays within
``2 - 1/M`` of the optimal maximum per-processor memory ``ω_opt``.

``run(preset)`` regenerates the artefact at an experiment preset; timing,
repeats and ``BENCH_*.json`` artifacts live in the shared harness
(``repro-lb bench run``).
"""

from repro.bench import bench_script

run, main = bench_script("E5")

if __name__ == "__main__":
    import sys

    sys.exit(main())
