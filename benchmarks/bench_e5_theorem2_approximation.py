"""E5 — validate Theorem 2 empirically: the memory-only rule is (2 - 1/M)-approximate.

Paper artefact: Theorem 2 (section 5.2) proves that, when only memory is
considered, the greedy "least loaded memory first" rule stays within
``2 - 1/M`` of the optimal maximum per-processor memory ``ω_opt``.

The benchmark times the exact branch-and-bound optimum (the expensive part of
the experiment) and prints the measured worst/mean ratios per processor
count; the gate is that no exactly-solved instance violates the bound.
"""

import numpy as np

from repro.analysis import measure_greedy_ratio
from repro.experiments import Theorem2Config, run_e5_theorem2


def test_e5_theorem2_approximation(benchmark, capsys):
    """Measured ω/ω_opt never exceeds 2 - 1/M."""
    rng = np.random.default_rng(2008)
    memories = [round(float(rng.uniform(1.0, 20.0)), 1) for _ in range(12)]

    benchmark(lambda: measure_greedy_ratio(memories, 3))

    result = run_e5_theorem2(Theorem2Config.quick())
    with capsys.disabled():
        print()
        print(result.render())
    assert result.passed, "a measured ratio exceeded the Theorem-2 bound"


def run(preset: str = "quick"):
    """Regenerate the E5 artefact at the given preset ("tiny", "quick" or "full")."""
    return run_e5_theorem2(Theorem2Config.from_preset(preset))


def main(argv=None) -> int:
    """Entry point: ``python benchmarks/bench_e5_theorem2_approximation.py [--preset tiny|quick|full]``."""
    from repro.experiments.configs import preset_cli

    return preset_cli(run, "validate the Theorem-2 approximation (E5)", argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
