"""E2 — regenerate Figure 1: multi-rate data transfer and consumer-side buffering.

Paper artefact: Figure 1 shows that when a consumer's period is ``n`` times
its producer's period and the two run on different processors, the consumer's
processor must buffer the ``n`` data items of one consumer window (``n = 4``
in the figure) — memory reuse is impossible.

``run(preset)`` regenerates the artefact at an experiment preset; timing,
repeats and ``BENCH_*.json`` artifacts live in the shared harness
(``repro-lb bench run``).
"""

from repro.bench import bench_script

run, main = bench_script("E2")

if __name__ == "__main__":
    import sys

    sys.exit(main())
