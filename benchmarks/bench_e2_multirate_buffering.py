"""E2 — regenerate Figure 1: multi-rate data transfer and consumer-side buffering.

Paper artefact: Figure 1 shows that when a consumer's period is ``n`` times
its producer's period and the two run on different processors, the consumer's
processor must buffer the ``n`` data items of one consumer window (``n = 4``
in the figure) — memory reuse is impossible.

The benchmark times the discrete-event simulation of the two-task scenario
and prints the peak-buffer-vs-ratio table.
"""

from repro.experiments import MultirateConfig, run_e2_multirate_buffering
from repro.experiments.runner import _two_task_schedule
from repro.simulation import SimulationOptions, simulate


def test_e2_multirate_buffering(benchmark, capsys):
    """Peak consumer-side buffer equals n producer samples for ratio n."""
    config = MultirateConfig.quick()
    schedule = _two_task_schedule(4, config)  # the Figure-1 ratio

    benchmark(lambda: simulate(schedule, SimulationOptions(hyper_periods=2)))

    result = run_e2_multirate_buffering(config)
    with capsys.disabled():
        print()
        print(result.render())
    assert result.passed, "measured buffering does not match the Figure-1 semantics"


def run(preset: str = "quick"):
    """Regenerate the E2 artefact at the given preset ("tiny", "quick" or "full")."""
    return run_e2_multirate_buffering(MultirateConfig.from_preset(preset))


def main(argv=None) -> int:
    """Entry point: ``python benchmarks/bench_e2_multirate_buffering.py [--preset tiny|quick|full]``."""
    from repro.experiments.configs import preset_cli

    return preset_cli(run, "regenerate the Figure-1 buffering study (E2)", argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
