"""E8 — processor idle fraction before and after balancing.

Paper artefact: the introduction quotes a study ([3]) observing that "over
65% of processors are idle at any given time" in general-purpose distributed
systems and argues strict periodicity makes the figure larger for real-time
systems; load balancing is motivated by reclaiming part of that waste.

``run(preset)`` regenerates the artefact at an experiment preset; timing,
repeats and ``BENCH_*.json`` artifacts live in the shared harness
(``repro-lb bench run``).
"""

from repro.bench import bench_script

run, main = bench_script("E8")

if __name__ == "__main__":
    import sys

    sys.exit(main())
