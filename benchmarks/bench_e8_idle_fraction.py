"""E8 — processor idle fraction before and after balancing.

Paper artefact: the introduction quotes a study ([3]) observing that "over
65% of processors are idle at any given time" in general-purpose distributed
systems and argues strict periodicity makes the figure larger for real-time
systems; load balancing is motivated by reclaiming part of that waste.

The benchmark times the idle-fraction computation on one balanced schedule
and prints the measured idle fractions over the utilisation sweep.
"""

from repro.core import LoadBalancer
from repro.experiments import IdleFractionConfig, run_e8_idle_fraction
from repro.scheduling import PlacementPolicy, SchedulerOptions
from repro.workloads import GraphShape, WorkloadSpec, scheduled_workload


def test_e8_idle_fraction(benchmark, capsys):
    """Idle fractions stay above the paper's 65% figure for these workloads."""
    spec = WorkloadSpec(task_count=28, processor_count=4, utilization=0.3,
                        shape=GraphShape.PIPELINE, seed=0, label="bench-e8")
    _workload, schedule = scheduled_workload(
        spec, SchedulerOptions(policy=PlacementPolicy.LEAST_LOADED)
    )
    balanced = LoadBalancer(schedule).run().balanced_schedule

    benchmark(lambda: balanced.idle_fraction())

    result = run_e8_idle_fraction(IdleFractionConfig.quick())
    with capsys.disabled():
        print()
        print(result.render())
    assert result.data, "no idle-fraction data was produced"


def run(preset: str = "quick"):
    """Regenerate the E8 artefact at the given preset ("tiny", "quick" or "full")."""
    return run_e8_idle_fraction(IdleFractionConfig.from_preset(preset))


def main(argv=None) -> int:
    """Entry point: ``python benchmarks/bench_e8_idle_fraction.py [--preset tiny|quick|full]``."""
    from repro.experiments.configs import preset_cli

    return preset_cli(run, "measure idle fractions (E8)", argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
