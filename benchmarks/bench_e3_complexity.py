"""E3 — regenerate the complexity study of section 4 (``O(M · N_blocks)``).

Paper artefact: section 4 argues the heuristic performs ``M · N_blocks``
cost-function evaluations and is therefore fast on large applications.

``run(preset)`` regenerates the artefact at an experiment preset; timing,
repeats and ``BENCH_*.json`` artifacts live in the shared harness
(``repro-lb bench run``).  This is the benchmark the CI perf gate watches
most closely: the candidate-move evaluation loop dominates its wall time.
"""

from repro.bench import bench_script

run, main = bench_script("E3")

if __name__ == "__main__":
    import sys

    sys.exit(main())
