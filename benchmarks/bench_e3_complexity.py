"""E3 — regenerate the complexity study of section 4 (``O(M · N_blocks)``).

Paper artefact: section 4 argues the heuristic performs ``M · N_blocks``
cost-function evaluations and is therefore fast on large applications.

The benchmark times the heuristic on a mid-size random workload and prints
the runtime/evaluation-count scaling table over the (N, M) sweep.
"""

from repro.core import LoadBalancer
from repro.experiments import ComplexityConfig, run_e3_complexity
from repro.workloads import WorkloadSpec, scheduled_workload


def test_e3_complexity(benchmark, capsys):
    """The heuristic performs exactly M·N_blocks cost-function evaluations."""
    spec = WorkloadSpec(task_count=100, processor_count=4, utilization=0.25, seed=1,
                        base_period=40, label="bench-e3")
    _workload, schedule = scheduled_workload(spec)

    benchmark(lambda: LoadBalancer(schedule).run())

    result = run_e3_complexity(ComplexityConfig.quick())
    with capsys.disabled():
        print()
        print(result.render())
    assert result.passed, "evaluation count does not match M·N_blocks"


def run(preset: str = "quick"):
    """Regenerate the E3 artefact at the given preset ("tiny", "quick" or "full")."""
    return run_e3_complexity(ComplexityConfig.from_preset(preset))


def main(argv=None) -> int:
    """Entry point: ``python benchmarks/bench_e3_complexity.py [--preset tiny|quick|full]``."""
    from repro.experiments.configs import preset_cli

    return preset_cli(run, "regenerate the complexity study (E3)", argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
