"""E7 — ablation of the cost-function interpretation and acceptance rules.

Paper artefact: equation (5) versus the behaviour exemplified in section 3.3
(DESIGN.md §2, items A1/B1), plus the role of the Block/LCM condition and of
the reproduction's additional steady-state / protection rules.

The benchmark times one balancing run under the default options and prints
the averaged ablation table (gain, memory, moves, feasibility per variant).
"""

from repro.core import CostPolicy, LoadBalancer, LoadBalancerOptions
from repro.experiments import AblationConfig, run_e7_ablation
from repro.scheduling import PlacementPolicy, SchedulerOptions
from repro.workloads import scheduled_workload


def test_e7_ablation_cost_policy(benchmark, capsys):
    """Compare eq.-(5) interpretations and rule ablations."""
    config = AblationConfig.quick()
    _workload, schedule = scheduled_workload(
        config.spec.with_updates(seed=0),
        SchedulerOptions(policy=PlacementPolicy.LEAST_LOADED),
    )

    benchmark(
        lambda: LoadBalancer(
            schedule, LoadBalancerOptions(policy=CostPolicy.LEXICOGRAPHIC)
        ).run()
    )

    result = run_e7_ablation(config)
    with capsys.disabled():
        print()
        print(result.render())
    assert result.data["metrics"], "the ablation produced no data"


def run(preset: str = "quick"):
    """Regenerate the E7 artefact at the given preset ("tiny", "quick" or "full")."""
    return run_e7_ablation(AblationConfig.from_preset(preset))


def main(argv=None) -> int:
    """Entry point: ``python benchmarks/bench_e7_ablation_cost_policy.py [--preset tiny|quick|full]``."""
    from repro.experiments.configs import preset_cli

    return preset_cli(run, "ablate cost policies and rules (E7)", argv)


if __name__ == "__main__":
    import sys

    sys.exit(main())
