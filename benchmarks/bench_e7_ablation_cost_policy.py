"""E7 — ablation of the cost-function interpretation and acceptance rules.

Paper artefact: equation (5) versus the behaviour exemplified in section 3.3
(DESIGN.md §2, items A1/B1), plus the role of the Block/LCM condition and of
the reproduction's additional steady-state / protection rules.

``run(preset)`` regenerates the artefact at an experiment preset; timing,
repeats and ``BENCH_*.json`` artifacts live in the shared harness
(``repro-lb bench run``).
"""

from repro.bench import bench_script

run, main = bench_script("E7")

if __name__ == "__main__":
    import sys

    sys.exit(main())
