"""Legacy setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file only
exists so that fully offline environments lacking the ``wheel`` package can
still do an editable install with ``python setup.py develop --no-deps``.
"""

from setuptools import setup

setup()
